//! The `gompressod` wire protocol: length-prefixed frames over a byte
//! stream.
//!
//! Every frame is `kind: u8 | len: u32le | payload[len]`. A connection
//! carries a sequence of requests; each request is one control frame,
//! optionally followed (for the job requests) by a client→server stream of
//! [`FrameKind::Data`] frames terminated by [`FrameKind::End`]. The server
//! answers a job request with [`FrameKind::Go`] (admitted — stream your
//! data), [`FrameKind::Busy`] (shed — retry after the hint), or an
//! immediate [`FrameKind::Err`]; during the job it may interleave `Data`
//! frames of produced output, and it finishes with [`FrameKind::Ok`] or
//! [`FrameKind::Err`]. The payload *inside* the `Data` frames is an
//! ordinary Gompresso v4 stream container (or raw bytes, depending on
//! direction) — the framing layer is codec-agnostic.
//!
//! Hostile inputs are handled at this layer: a frame with an unknown kind
//! or a length beyond its kind's cap is rejected *before* any allocation
//! is sized from it, surfacing as `io::ErrorKind::InvalidData` — which the
//! session layer maps to a clean [`ErrCode::Protocol`] error for that
//! session only.

use std::io::{self, Read, Write};

/// Hard cap on any frame payload (1 MiB). `Data` frames use the full cap;
/// control frames use [`MAX_CONTROL_PAYLOAD`].
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Cap on control-frame payloads (requests, results, errors, stats).
pub const MAX_CONTROL_PAYLOAD: usize = 4096;

/// Chunk size used when slicing a byte stream into `Data` frames.
pub const DATA_CHUNK: usize = 256 * 1024;

/// Frame kinds. Requests are `0x0_`, stream frames `0x1_`, responses
/// `0x2_`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Start a compression job; payload is a [`CompressParams`] record.
    ReqCompress = 0x01,
    /// Start a decompression job; empty payload.
    ReqDecompress = 0x02,
    /// Start a verify job (decompress + checksums, output discarded);
    /// empty payload.
    ReqVerify = 0x03,
    /// Request the server's counters; empty payload.
    ReqStats = 0x04,
    /// Ask the server to drain and exit; empty payload.
    ReqShutdown = 0x05,
    /// A chunk of job bytes (either direction).
    Data = 0x10,
    /// End of the client's job bytes.
    End = 0x11,
    /// Job admitted: stream your data.
    Go = 0x20,
    /// Job finished: payload is `uncompressed: u64le | compressed: u64le |
    /// blocks: u64le`.
    Ok = 0x21,
    /// Request failed: payload is `code: u8 | utf8 message`.
    Err = 0x22,
    /// Server is saturated: payload is `backoff_hint_ms: u32le`. Retry.
    Busy = 0x23,
    /// Stats response: payload is `count: u32le | count × (tag: u8,
    /// value: u64le)`.
    Stats = 0x24,
}

impl FrameKind {
    /// Decodes a wire kind byte.
    pub fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            0x01 => FrameKind::ReqCompress,
            0x02 => FrameKind::ReqDecompress,
            0x03 => FrameKind::ReqVerify,
            0x04 => FrameKind::ReqStats,
            0x05 => FrameKind::ReqShutdown,
            0x10 => FrameKind::Data,
            0x11 => FrameKind::End,
            0x20 => FrameKind::Go,
            0x21 => FrameKind::Ok,
            0x22 => FrameKind::Err,
            0x23 => FrameKind::Busy,
            0x24 => FrameKind::Stats,
            _ => return None,
        })
    }

    /// The largest payload a frame of this kind may declare.
    pub fn max_payload(self) -> usize {
        match self {
            FrameKind::Data => MAX_FRAME_PAYLOAD,
            _ => MAX_CONTROL_PAYLOAD,
        }
    }
}

/// Error codes carried by [`FrameKind::Err`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrCode {
    /// The peer violated the wire protocol (bad frame, bad request).
    Protocol = 1,
    /// The job's input bytes are corrupt (checksum / format failure).
    Corrupt = 2,
    /// The server failed internally (a caught panic).
    Internal = 3,
    /// A read or write deadline expired.
    Timeout = 4,
    /// The server is draining and refuses new work.
    ShuttingDown = 5,
    /// A transport-level I/O failure.
    Io = 6,
}

impl ErrCode {
    /// Decodes a wire code byte; unknown codes collapse to [`ErrCode::Io`].
    pub fn from_u8(b: u8) -> ErrCode {
        match b {
            1 => ErrCode::Protocol,
            2 => ErrCode::Corrupt,
            3 => ErrCode::Internal,
            4 => ErrCode::Timeout,
            5 => ErrCode::ShuttingDown,
            _ => ErrCode::Io,
        }
    }

    /// Stable lowercase name, used in client-facing messages.
    pub fn name(self) -> &'static str {
        match self {
            ErrCode::Protocol => "protocol",
            ErrCode::Corrupt => "corrupt",
            ErrCode::Internal => "internal",
            ErrCode::Timeout => "timeout",
            ErrCode::ShuttingDown => "shutting-down",
            ErrCode::Io => "io",
        }
    }
}

/// Parameters of a compression request, as carried on the wire:
/// `mode: u8 (0 bit, 1 byte, 2 auto) | de: u8 | block_size: u32le`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressParams {
    /// 0 = Gompresso/Bit, 1 = Gompresso/Byte, 2 = adaptive per-block.
    pub mode: u8,
    /// Enable Dependency Elimination (ignored for mode 2, which plans DE
    /// per block).
    pub de: bool,
    /// Block size in bytes; 0 means the server default.
    pub block_size: u32,
}

impl CompressParams {
    /// Serializes to the 6-byte wire record.
    pub fn encode(&self) -> [u8; 6] {
        let mut out = [0u8; 6];
        out[0] = self.mode;
        out[1] = self.de as u8;
        out[2..6].copy_from_slice(&self.block_size.to_le_bytes());
        out
    }

    /// Parses the wire record; `None` if the payload is malformed.
    pub fn decode(payload: &[u8]) -> Option<CompressParams> {
        if payload.len() != 6 || payload[0] > 2 || payload[1] > 1 {
            return None;
        }
        Some(CompressParams {
            mode: payload[0],
            de: payload[1] == 1,
            block_size: u32::from_le_bytes(payload[2..6].try_into().unwrap()),
        })
    }
}

/// Totals reported by a finished job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobSummary {
    /// Uncompressed bytes that crossed the job's pipeline.
    pub uncompressed: u64,
    /// Compressed container bytes.
    pub compressed: u64,
    /// Data blocks processed.
    pub blocks: u64,
}

impl JobSummary {
    /// Serializes to the 24-byte [`FrameKind::Ok`] payload.
    pub fn encode(&self) -> [u8; 24] {
        let mut out = [0u8; 24];
        out[..8].copy_from_slice(&self.uncompressed.to_le_bytes());
        out[8..16].copy_from_slice(&self.compressed.to_le_bytes());
        out[16..].copy_from_slice(&self.blocks.to_le_bytes());
        out
    }

    /// Parses the [`FrameKind::Ok`] payload.
    pub fn decode(payload: &[u8]) -> Option<JobSummary> {
        if payload.len() != 24 {
            return None;
        }
        Some(JobSummary {
            uncompressed: u64::from_le_bytes(payload[..8].try_into().unwrap()),
            compressed: u64::from_le_bytes(payload[8..16].try_into().unwrap()),
            blocks: u64::from_le_bytes(payload[16..].try_into().unwrap()),
        })
    }
}

/// Writes one frame. The caller is responsible for flushing.
pub fn write_frame<W: Write>(w: &mut W, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= kind.max_payload());
    let mut head = [0u8; 5];
    head[0] = kind as u8;
    head[1..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)
}

/// Writes an [`FrameKind::Err`] frame, truncating the message to the
/// control cap.
pub fn write_err<W: Write>(w: &mut W, code: ErrCode, message: &str) -> io::Result<()> {
    let msg = message.as_bytes();
    let msg = &msg[..msg.len().min(MAX_CONTROL_PAYLOAD - 1)];
    let mut payload = Vec::with_capacity(1 + msg.len());
    payload.push(code as u8);
    payload.extend_from_slice(msg);
    write_frame(w, FrameKind::Err, &payload)
}

/// Reads one frame, enforcing the per-kind payload cap *before* sizing the
/// payload buffer. Unknown kinds and oversized declarations surface as
/// `InvalidData` — a per-session protocol error, never a crash or an
/// allocation driven by hostile bytes.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<(FrameKind, Vec<u8>)> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let kind = FrameKind::from_u8(head[0]).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, format!("unknown frame kind {:#04x}", head[0]))
    })?;
    let len = u32::from_le_bytes(head[1..].try_into().unwrap()) as usize;
    if len > kind.max_payload() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame {kind:?} declares {len} payload bytes (cap {})", kind.max_payload()),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((kind, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Go, &[]).unwrap();
        write_frame(&mut wire, FrameKind::Data, b"payload").unwrap();
        write_err(&mut wire, ErrCode::Corrupt, "bad block").unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), (FrameKind::Go, vec![]));
        assert_eq!(read_frame(&mut r).unwrap(), (FrameKind::Data, b"payload".to_vec()));
        let (kind, payload) = read_frame(&mut r).unwrap();
        assert_eq!(kind, FrameKind::Err);
        assert_eq!(ErrCode::from_u8(payload[0]), ErrCode::Corrupt);
        assert_eq!(&payload[1..], b"bad block");
    }

    #[test]
    fn hostile_frames_are_rejected_before_allocation() {
        // Unknown kind.
        let mut wire = vec![0x7F, 0, 0, 0, 0];
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // A control frame declaring 4 GiB of payload: rejected from the
        // 5-byte head alone.
        wire = vec![FrameKind::Go as u8, 0xFF, 0xFF, 0xFF, 0xFF];
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // A Data frame just over its cap.
        let mut head = vec![FrameKind::Data as u8];
        head.extend_from_slice(&((MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes()));
        let err = read_frame(&mut head.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn params_and_summary_roundtrip() {
        let p = CompressParams { mode: 2, de: true, block_size: 64 * 1024 };
        assert_eq!(CompressParams::decode(&p.encode()), Some(p));
        assert_eq!(CompressParams::decode(&[3, 0, 0, 0, 0, 0]), None);
        assert_eq!(CompressParams::decode(&[0, 0, 0]), None);
        let s = JobSummary { uncompressed: 10, compressed: 3, blocks: 1 };
        assert_eq!(JobSummary::decode(&s.encode()), Some(s));
    }
}
