//! Admission control: bounded sessions, bounded memory, shed — don't OOM.
//!
//! Two resources are guarded. **Session slots** cap concurrent
//! connections; a connection that cannot get a slot is told `Busy` and
//! closed before it costs anything. **Memory permits** cap the summed
//! per-job budgets of jobs actually running a pipeline; a request that
//! cannot get a permit is told `Busy` with a backoff hint but keeps its
//! connection, so the retry is cheap. Both are RAII guards: a panicking
//! session or job releases its resources on unwind, which is what makes
//! the "no leaked slot" stats invariant hold under the fault matrix.
//!
//! The per-job budget is the global budget divided by the session cap
//! (floored so the stream pipeline keeps its minimum two blocks in
//! flight). Each admitted job runs its pipeline under
//! `with_mem_budget(per_job)`, so the daemon's aggregate pipeline memory
//! is bounded by the global budget no matter how demand arrives — overload
//! becomes `Busy` responses, never growth.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Floor for the per-job memory budget: enough for the stream pipeline's
/// minimum two 32 KiB-class blocks in flight with slack.
pub const MIN_JOB_BUDGET: usize = 256 * 1024;

/// The daemon's admission state.
#[derive(Debug)]
pub struct Admission {
    max_sessions: usize,
    mem_budget: usize,
    per_job: usize,
    sessions: AtomicUsize,
    mem_in_use: Mutex<usize>,
}

/// RAII session slot; dropping it releases the slot.
#[derive(Debug)]
pub struct SessionSlot<'a> {
    admission: &'a Admission,
}

/// RAII memory permit for one running job; dropping it returns the bytes.
#[derive(Debug)]
pub struct MemPermit<'a> {
    admission: &'a Admission,
    bytes: usize,
}

impl Admission {
    /// Creates the admission state for `max_sessions` concurrent sessions
    /// sharing `mem_budget` bytes of pipeline memory.
    pub fn new(max_sessions: usize, mem_budget: usize) -> Admission {
        let max_sessions = max_sessions.max(1);
        let per_job = (mem_budget / max_sessions).max(MIN_JOB_BUDGET);
        Admission {
            max_sessions,
            mem_budget: mem_budget.max(per_job),
            per_job,
            sessions: AtomicUsize::new(0),
            mem_in_use: Mutex::new(0),
        }
    }

    /// The pipeline memory budget each admitted job runs under.
    pub fn per_job_budget(&self) -> usize {
        self.per_job
    }

    /// Sessions currently holding a slot.
    pub fn active_sessions(&self) -> usize {
        self.sessions.load(Ordering::Relaxed)
    }

    /// Tries to claim a session slot.
    pub fn try_session(&self) -> Option<SessionSlot<'_>> {
        // CAS loop instead of fetch_add/undo so a refused connection never
        // transiently occupies the last slot.
        let mut cur = self.sessions.load(Ordering::Relaxed);
        loop {
            if cur >= self.max_sessions {
                return None;
            }
            match self.sessions.compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return Some(SessionSlot { admission: self }),
                Err(now) => cur = now,
            }
        }
    }

    /// Tries to claim a memory permit for one job.
    pub fn try_mem(&self) -> Option<MemPermit<'_>> {
        let mut in_use = self.mem_in_use.lock().unwrap_or_else(|p| p.into_inner());
        if *in_use + self.per_job > self.mem_budget {
            return None;
        }
        *in_use += self.per_job;
        Some(MemPermit { admission: self, bytes: self.per_job })
    }
}

impl Drop for SessionSlot<'_> {
    fn drop(&mut self) {
        self.admission.sessions.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Drop for MemPermit<'_> {
    fn drop(&mut self) {
        let mut in_use = self.admission.mem_in_use.lock().unwrap_or_else(|p| p.into_inner());
        *in_use = in_use.saturating_sub(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_slots_are_bounded_and_released() {
        let a = Admission::new(2, 1 << 20);
        let s1 = a.try_session().unwrap();
        let _s2 = a.try_session().unwrap();
        assert!(a.try_session().is_none(), "third session must be shed");
        assert_eq!(a.active_sessions(), 2);
        drop(s1);
        assert_eq!(a.active_sessions(), 1);
        assert!(a.try_session().is_some(), "released slot is reusable");
    }

    #[test]
    fn memory_permits_partition_the_global_budget() {
        let a = Admission::new(4, 4 * MIN_JOB_BUDGET);
        assert_eq!(a.per_job_budget(), MIN_JOB_BUDGET);
        let permits: Vec<_> = (0..4).map(|_| a.try_mem().unwrap()).collect();
        assert!(a.try_mem().is_none(), "budget exhausted: fifth job must be shed");
        drop(permits);
        assert!(a.try_mem().is_some(), "dropped permits return their bytes");
    }

    #[test]
    fn tiny_budgets_floor_at_the_pipeline_minimum() {
        let a = Admission::new(8, 1024);
        assert_eq!(a.per_job_budget(), MIN_JOB_BUDGET);
        // The floored per-job budget implies a single admitted job.
        let _p = a.try_mem().unwrap();
        assert!(a.try_mem().is_none());
    }
}
