//! Observable degradation: the daemon's counters.
//!
//! Every robustness decision the server makes — shedding a request,
//! timing out a stalled peer, catching a worker panic, refusing work while
//! draining — increments a counter here, and the `stats` request exposes
//! the whole set over the wire. The counters are the test suite's oracle
//! for "no session slot leaked" (`sessions_accepted - sessions_completed =
//! sessions_active`) and CI's oracle for "the soak run shed instead of
//! crashing".

use crate::protocol::{write_frame, FrameKind};
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wire tags for the stats counters. Stable across releases: clients match
/// on the tag, never on the position in the frame.
pub mod tag {
    /// Connections accepted (including ones later shed).
    pub const SESSIONS_ACCEPTED: u8 = 1;
    /// Sessions currently holding a slot.
    pub const SESSIONS_ACTIVE: u8 = 2;
    /// Sessions that released their slot.
    pub const SESSIONS_COMPLETED: u8 = 3;
    /// Compression jobs finished successfully.
    pub const JOBS_COMPRESS: u8 = 4;
    /// Decompression jobs finished successfully.
    pub const JOBS_DECOMPRESS: u8 = 5;
    /// Verify jobs finished successfully.
    pub const JOBS_VERIFY: u8 = 6;
    /// Job payload bytes received from clients.
    pub const BYTES_IN: u8 = 7;
    /// Job payload bytes sent to clients.
    pub const BYTES_OUT: u8 = 8;
    /// Requests shed with `Busy` (session slots or memory exhausted).
    pub const SHEDS: u8 = 9;
    /// Read/write deadlines that expired.
    pub const TIMEOUTS: u8 = 10;
    /// Wire-protocol violations by peers.
    pub const PROTOCOL_ERRORS: u8 = 11;
    /// Jobs that failed on corrupt input.
    pub const CORRUPTIONS: u8 = 12;
    /// Transport-level I/O failures.
    pub const IO_ERRORS: u8 = 13;
    /// Panics caught at a session or job boundary.
    pub const PANICS_CAUGHT: u8 = 14;
    /// Requests refused because the server was draining.
    pub const REFUSED_DRAINING: u8 = 15;
    /// Peak resident set size of the process, bytes (0 where unreadable).
    pub const PEAK_RSS_BYTES: u8 = 16;
}

/// Lock-free counter block shared by every session thread.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// See [`tag::SESSIONS_ACCEPTED`].
    pub sessions_accepted: AtomicU64,
    /// See [`tag::SESSIONS_COMPLETED`].
    pub sessions_completed: AtomicU64,
    /// See [`tag::JOBS_COMPRESS`].
    pub jobs_compress: AtomicU64,
    /// See [`tag::JOBS_DECOMPRESS`].
    pub jobs_decompress: AtomicU64,
    /// See [`tag::JOBS_VERIFY`].
    pub jobs_verify: AtomicU64,
    /// See [`tag::BYTES_IN`].
    pub bytes_in: AtomicU64,
    /// See [`tag::BYTES_OUT`].
    pub bytes_out: AtomicU64,
    /// See [`tag::SHEDS`].
    pub sheds: AtomicU64,
    /// See [`tag::TIMEOUTS`].
    pub timeouts: AtomicU64,
    /// See [`tag::PROTOCOL_ERRORS`].
    pub protocol_errors: AtomicU64,
    /// See [`tag::CORRUPTIONS`].
    pub corruptions: AtomicU64,
    /// See [`tag::IO_ERRORS`].
    pub io_errors: AtomicU64,
    /// See [`tag::PANICS_CAUGHT`].
    pub panics_caught: AtomicU64,
    /// See [`tag::REFUSED_DRAINING`].
    pub refused_draining: AtomicU64,
}

/// `c.bump()` / `c.add(n)` with relaxed ordering — counters are
/// monotonic telemetry, not synchronization.
pub(crate) trait Bump {
    fn bump(&self);
    fn add(&self, n: u64);
}

impl Bump for AtomicU64 {
    fn bump(&self) {
        self.fetch_add(1, Ordering::Relaxed);
    }
    fn add(&self, n: u64) {
        self.fetch_add(n, Ordering::Relaxed);
    }
}

impl ServiceStats {
    /// Serializes every counter (plus the live `sessions_active` value and
    /// the process peak RSS) into a [`FrameKind::Stats`] frame.
    pub fn write_frame<W: Write>(&self, w: &mut W, sessions_active: u64) -> io::Result<()> {
        let pairs = self.pairs(sessions_active);
        let mut payload = Vec::with_capacity(4 + pairs.len() * 9);
        payload.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
        for (t, v) in pairs {
            payload.push(t);
            payload.extend_from_slice(&v.to_le_bytes());
        }
        write_frame(w, FrameKind::Stats, &payload)
    }

    fn pairs(&self, sessions_active: u64) -> Vec<(u8, u64)> {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            (tag::SESSIONS_ACCEPTED, g(&self.sessions_accepted)),
            (tag::SESSIONS_ACTIVE, sessions_active),
            (tag::SESSIONS_COMPLETED, g(&self.sessions_completed)),
            (tag::JOBS_COMPRESS, g(&self.jobs_compress)),
            (tag::JOBS_DECOMPRESS, g(&self.jobs_decompress)),
            (tag::JOBS_VERIFY, g(&self.jobs_verify)),
            (tag::BYTES_IN, g(&self.bytes_in)),
            (tag::BYTES_OUT, g(&self.bytes_out)),
            (tag::SHEDS, g(&self.sheds)),
            (tag::TIMEOUTS, g(&self.timeouts)),
            (tag::PROTOCOL_ERRORS, g(&self.protocol_errors)),
            (tag::CORRUPTIONS, g(&self.corruptions)),
            (tag::IO_ERRORS, g(&self.io_errors)),
            (tag::PANICS_CAUGHT, g(&self.panics_caught)),
            (tag::REFUSED_DRAINING, g(&self.refused_draining)),
            (tag::PEAK_RSS_BYTES, peak_rss_bytes()),
        ]
    }
}

/// Client-side decoded stats frame. Unknown tags are ignored, so old
/// clients read new servers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`tag::SESSIONS_ACCEPTED`].
    pub sessions_accepted: u64,
    /// See [`tag::SESSIONS_ACTIVE`].
    pub sessions_active: u64,
    /// See [`tag::SESSIONS_COMPLETED`].
    pub sessions_completed: u64,
    /// See [`tag::JOBS_COMPRESS`].
    pub jobs_compress: u64,
    /// See [`tag::JOBS_DECOMPRESS`].
    pub jobs_decompress: u64,
    /// See [`tag::JOBS_VERIFY`].
    pub jobs_verify: u64,
    /// See [`tag::BYTES_IN`].
    pub bytes_in: u64,
    /// See [`tag::BYTES_OUT`].
    pub bytes_out: u64,
    /// See [`tag::SHEDS`].
    pub sheds: u64,
    /// See [`tag::TIMEOUTS`].
    pub timeouts: u64,
    /// See [`tag::PROTOCOL_ERRORS`].
    pub protocol_errors: u64,
    /// See [`tag::CORRUPTIONS`].
    pub corruptions: u64,
    /// See [`tag::IO_ERRORS`].
    pub io_errors: u64,
    /// See [`tag::PANICS_CAUGHT`].
    pub panics_caught: u64,
    /// See [`tag::REFUSED_DRAINING`].
    pub refused_draining: u64,
    /// See [`tag::PEAK_RSS_BYTES`].
    pub peak_rss_bytes: u64,
}

impl StatsSnapshot {
    /// Parses a [`FrameKind::Stats`] payload; `None` if malformed.
    pub fn decode(payload: &[u8]) -> Option<StatsSnapshot> {
        if payload.len() < 4 {
            return None;
        }
        let count = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
        if payload.len() != 4 + count * 9 {
            return None;
        }
        let mut s = StatsSnapshot::default();
        for i in 0..count {
            let rec = &payload[4 + i * 9..4 + (i + 1) * 9];
            let v = u64::from_le_bytes(rec[1..].try_into().unwrap());
            match rec[0] {
                tag::SESSIONS_ACCEPTED => s.sessions_accepted = v,
                tag::SESSIONS_ACTIVE => s.sessions_active = v,
                tag::SESSIONS_COMPLETED => s.sessions_completed = v,
                tag::JOBS_COMPRESS => s.jobs_compress = v,
                tag::JOBS_DECOMPRESS => s.jobs_decompress = v,
                tag::JOBS_VERIFY => s.jobs_verify = v,
                tag::BYTES_IN => s.bytes_in = v,
                tag::BYTES_OUT => s.bytes_out = v,
                tag::SHEDS => s.sheds = v,
                tag::TIMEOUTS => s.timeouts = v,
                tag::PROTOCOL_ERRORS => s.protocol_errors = v,
                tag::CORRUPTIONS => s.corruptions = v,
                tag::IO_ERRORS => s.io_errors = v,
                tag::PANICS_CAUGHT => s.panics_caught = v,
                tag::REFUSED_DRAINING => s.refused_draining = v,
                tag::PEAK_RSS_BYTES => s.peak_rss_bytes = v,
                _ => {}
            }
        }
        Some(s)
    }

    /// Renders `tag value` lines in a stable order (the `client stats`
    /// output format).
    pub fn render(&self) -> String {
        format!(
            "sessions_accepted {}\nsessions_active {}\nsessions_completed {}\n\
             jobs_compress {}\njobs_decompress {}\njobs_verify {}\n\
             bytes_in {}\nbytes_out {}\nsheds {}\ntimeouts {}\n\
             protocol_errors {}\ncorruptions {}\nio_errors {}\npanics_caught {}\n\
             refused_draining {}\npeak_rss_bytes {}\n",
            self.sessions_accepted,
            self.sessions_active,
            self.sessions_completed,
            self.jobs_compress,
            self.jobs_decompress,
            self.jobs_verify,
            self.bytes_in,
            self.bytes_out,
            self.sheds,
            self.timeouts,
            self.protocol_errors,
            self.corruptions,
            self.io_errors,
            self.panics_caught,
            self.refused_draining,
            self.peak_rss_bytes,
        )
    }
}

/// Peak resident set size of this process in bytes, from
/// `/proc/self/status` `VmHWM`; 0 where the proc interface is missing.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::read_frame;

    #[test]
    fn stats_frame_roundtrips() {
        let stats = ServiceStats::default();
        stats.sheds.add(7);
        stats.jobs_compress.bump();
        stats.bytes_in.add(1234);
        let mut wire = Vec::new();
        stats.write_frame(&mut wire, 3).unwrap();
        let (kind, payload) = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(kind, FrameKind::Stats);
        let snap = StatsSnapshot::decode(&payload).unwrap();
        assert_eq!(snap.sheds, 7);
        assert_eq!(snap.jobs_compress, 1);
        assert_eq!(snap.bytes_in, 1234);
        assert_eq!(snap.sessions_active, 3);
        assert!(snap.render().contains("sheds 7"));
    }

    #[test]
    fn malformed_stats_payloads_decode_to_none() {
        assert_eq!(StatsSnapshot::decode(&[]), None);
        assert_eq!(StatsSnapshot::decode(&[2, 0, 0, 0, 1]), None);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes() > 0);
        }
    }
}
