//! End-to-end tests of `gompressod`: the network fault matrix, session
//! isolation, admission-control shedding, and graceful drain.
//!
//! The server runs in-process on an ephemeral port; "victim" clients
//! speak the wire protocol by hand to inject each fault shape, while
//! healthy clients run real jobs concurrently and must come out
//! byte-identical to the library path.

use gompresso_core::{CompressorConfig, FaultPlan, FaultWriter, StreamCompressor};
use gompresso_service::protocol::{read_frame, write_frame, CompressParams, ErrCode, FrameKind};
use gompresso_service::{Client, ClientError, DrainReport, Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Compressible but non-trivial test data, distinct per seed.
fn corpus(seed: u64, len: usize) -> Vec<u8> {
    let mut data = Vec::with_capacity(len + 128);
    let mut i = seed;
    while data.len() < len {
        data.extend_from_slice(
            format!(
                "<row id=\"{i}\" seed=\"{seed}\">the quick brown fox jumps over entry {}</row>\n",
                i % 89
            )
            .as_bytes(),
        );
        i += 1;
    }
    data.truncate(len);
    data
}

/// The job configuration every test uses: Bit + DE, 32 KiB blocks.
fn wire_params() -> CompressParams {
    CompressParams { mode: 0, de: true, block_size: 32 * 1024 }
}

fn library_config() -> CompressorConfig {
    let mut c = CompressorConfig::bit_de();
    c.block_size = 32 * 1024;
    c
}

/// The container the library path produces for `data` — the byte-identity
/// reference for everything the daemon compresses.
fn library_container(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    StreamCompressor::new(library_config()).unwrap().compress(data, &mut out).unwrap();
    out
}

fn start_server(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<DrainReport>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral");
    let handle = server.handle().expect("handle");
    let join = std::thread::spawn(move || server.run().expect("accept loop"));
    (handle, join)
}

fn connect_client(handle: &ServerHandle) -> Client {
    Client::connect(&handle.addr().to_string(), Some(Duration::from_secs(20))).expect("connect")
}

/// Raw connection for hand-rolled protocol exchanges (the fault victims).
fn raw_connect(handle: &ServerHandle) -> TcpStream {
    let s = TcpStream::connect(handle.addr()).expect("raw connect");
    s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(20))).unwrap();
    s
}

/// Sends a compress request and consumes the `Go`.
fn raw_start_compress(stream: &mut TcpStream) {
    write_frame(stream, FrameKind::ReqCompress, &wire_params().encode()).unwrap();
    let (kind, _) = read_frame(stream).unwrap();
    assert_eq!(kind, FrameKind::Go, "victim job must be admitted before the fault fires");
}

/// Reads response frames until `Err`, asserting no `Ok` arrives first;
/// returns the error code.
fn raw_expect_err(stream: &mut TcpStream) -> ErrCode {
    loop {
        let (kind, payload) = read_frame(stream).expect("server must answer with a frame, not a dead socket");
        match kind {
            FrameKind::Data => continue,
            FrameKind::Err => return ErrCode::from_u8(payload[0]),
            other => panic!("expected Err, got {other:?}"),
        }
    }
}

#[test]
fn wire_roundtrip_matches_library_and_counts_jobs() {
    let (handle, join) = start_server(ServerConfig::default());
    let data = corpus(1, 150_000);
    let reference = library_container(&data);

    let mut client = connect_client(&handle);
    let mut compressed = Vec::new();
    let summary = client.compress(wire_params(), data.as_slice(), &mut compressed).unwrap();
    assert_eq!(compressed, reference, "daemon container must be byte-identical to the library path");
    assert_eq!(summary.uncompressed, data.len() as u64);
    assert_eq!(summary.compressed, reference.len() as u64);

    let mut restored = Vec::new();
    let summary = client.decompress(compressed.as_slice(), &mut restored).unwrap();
    assert_eq!(restored, data);
    assert_eq!(summary.uncompressed, data.len() as u64);

    let summary = client.verify(compressed.as_slice()).unwrap();
    assert_eq!(summary.blocks, (data.len() as u64).div_ceil(32 * 1024));

    let stats = client.stats().unwrap();
    assert_eq!(stats.jobs_compress, 1);
    assert_eq!(stats.jobs_decompress, 1);
    assert_eq!(stats.jobs_verify, 1);
    assert_eq!(stats.sessions_active, 1, "only this client's session is live");
    assert_eq!(stats.panics_caught, 0);
    assert!(stats.bytes_in >= data.len() as u64);

    drop(client);
    handle.shutdown();
    let report = join.join().unwrap();
    assert!(report.clean, "drain after a quiet roundtrip must be clean: {report:?}");
}

#[test]
fn fault_matrix_isolates_victims_and_preserves_healthy_sessions() {
    let config = ServerConfig {
        max_sessions: 16,
        io_timeout: Duration::from_secs(2),
        idle_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    let (handle, join) = start_server(config);

    // A container with one payload byte flipped: structurally parseable
    // framing, corrupt content.
    let victim_data = corpus(99, 100_000);
    let mut corrupt_container = library_container(&victim_data);
    let mid = corrupt_container.len() / 2;
    corrupt_container[mid] ^= 0x40;

    std::thread::scope(|scope| {
        // Four healthy sessions running real jobs throughout the faults.
        for seed in 0..4u64 {
            let handle = &handle;
            scope.spawn(move || {
                let data = corpus(seed, 120_000);
                let reference = library_container(&data);
                let mut client = connect_client(handle);
                let mut compressed = Vec::new();
                client.compress(wire_params(), data.as_slice(), &mut compressed).unwrap();
                assert_eq!(compressed, reference, "healthy session {seed} diverged from the library path");
                let mut restored = Vec::new();
                client.decompress(compressed.as_slice(), &mut restored).unwrap();
                assert_eq!(restored, data, "healthy session {seed} round-trip");
            });
        }

        // Victim: mid-stream disconnect. The session dies with the socket;
        // nobody else notices.
        let disconnect_handle = &handle;
        scope.spawn(move || {
            let mut s = raw_connect(disconnect_handle);
            raw_start_compress(&mut s);
            write_frame(&mut s, FrameKind::Data, &corpus(7, 4096)).unwrap();
            drop(s);
        });

        // Victim: unknown frame kind — a clean Protocol error.
        let garbage_handle = &handle;
        scope.spawn(move || {
            let mut s = raw_connect(garbage_handle);
            s.write_all(&[0x7F, 0, 0, 0, 0]).unwrap();
            let (kind, payload) = read_frame(&mut s).unwrap();
            assert_eq!(kind, FrameKind::Err);
            assert_eq!(ErrCode::from_u8(payload[0]), ErrCode::Protocol);
        });

        // Victim: hostile oversized frame declaration (4 GiB Data frame).
        let hostile_handle = &handle;
        scope.spawn(move || {
            let mut s = raw_connect(hostile_handle);
            raw_start_compress(&mut s);
            s.write_all(&[FrameKind::Data as u8, 0xFF, 0xFF, 0xFF, 0xFF]).unwrap();
            assert_eq!(raw_expect_err(&mut s), ErrCode::Protocol);
        });

        // Victim: stall past the read deadline mid-job.
        let stall_handle = &handle;
        scope.spawn(move || {
            let mut s = raw_connect(stall_handle);
            raw_start_compress(&mut s);
            write_frame(&mut s, FrameKind::Data, &corpus(11, 1024)).unwrap();
            std::thread::sleep(Duration::from_millis(3200));
            assert_eq!(raw_expect_err(&mut s), ErrCode::Timeout);
        });

        // Victim: corrupt container content through a verify job — the
        // codec flags it, the session answers Corrupt.
        let corrupt_handle = &handle;
        let corrupt_container = &corrupt_container;
        scope.spawn(move || {
            let mut client = connect_client(corrupt_handle);
            let err = client.verify(corrupt_container.as_slice()).unwrap_err();
            assert!(err.is_corruption(), "corrupt container must answer Corrupt, got {err}");
        });

        // Not-quite-a-victim: a client whose socket writes land in 3-byte
        // bursts (FaultWriter over the TcpStream). Short writes are a
        // transport shape, not an error — the job must succeed.
        let burst_handle = &handle;
        scope.spawn(move || {
            let data = corpus(23, 60_000);
            let reference = library_container(&data);
            let read_half = raw_connect(burst_handle);
            let write_half = read_half.try_clone().unwrap();
            let mut w = FaultWriter::new(write_half, FaultPlan::clean().short_writes(3));
            write_frame(&mut w, FrameKind::ReqCompress, &wire_params().encode()).unwrap();
            let mut r = std::io::BufReader::new(read_half);
            let (kind, _) = read_frame(&mut r).unwrap();
            assert_eq!(kind, FrameKind::Go);
            for chunk in data.chunks(8 * 1024) {
                write_frame(&mut w, FrameKind::Data, chunk).unwrap();
            }
            write_frame(&mut w, FrameKind::End, &[]).unwrap();
            w.flush().unwrap();
            let mut compressed = Vec::new();
            loop {
                let (kind, payload) = read_frame(&mut r).unwrap();
                match kind {
                    FrameKind::Data => compressed.extend_from_slice(&payload),
                    FrameKind::Ok => break,
                    other => panic!("short-write job failed with {other:?}: {payload:?}"),
                }
            }
            assert_eq!(compressed, reference, "short-write transport must not change the bytes");
        });
    });

    // The ledger after the storm: every slot came back, nothing panicked,
    // and each fault was counted where it belongs.
    let mut client = connect_client(&handle);
    let stats = client.stats().unwrap();
    assert_eq!(stats.sessions_active, 1, "only the stats session is live; no slot leaked");
    assert_eq!(stats.sessions_accepted, stats.sessions_completed + 1, "accepted = completed + live");
    assert_eq!(stats.panics_caught, 0, "no fault may reach a panic");
    assert!(stats.protocol_errors >= 2, "unknown-kind and oversized-frame victims: {stats:?}");
    assert!(stats.timeouts >= 1, "stall victim must time out: {stats:?}");
    assert!(stats.io_errors >= 1, "disconnect victim is a transport death: {stats:?}");
    assert!(stats.corruptions >= 1, "corrupt-container victim: {stats:?}");
    assert_eq!(stats.jobs_compress, 5, "four healthy + one short-write compress job");

    drop(client);
    handle.shutdown();
    let report = join.join().unwrap();
    assert!(report.clean, "the fault matrix must not prevent a clean drain: {report:?}");
}

#[test]
fn overload_is_shed_with_busy_and_retries_succeed() {
    // One memory permit in total: max_sessions birds, one job at a time.
    let config = ServerConfig {
        max_sessions: 6,
        mem_budget: 256 * 1024,
        io_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let (handle, join) = start_server(config);

    // Hold the only permit: admitted job, data not yet finished.
    let mut holder = raw_connect(&handle);
    raw_start_compress(&mut holder);
    write_frame(&mut holder, FrameKind::Data, &corpus(3, 2048)).unwrap();

    // A second job is shed with a backoff hint — and its connection
    // survives the shed.
    let data = corpus(5, 80_000);
    let mut client = connect_client(&handle);
    let err = client.compress(wire_params(), data.as_slice(), &mut Vec::new()).unwrap_err();
    let ClientError::Busy { backoff_ms } = err else { panic!("expected Busy, got {err}") };
    assert!(backoff_ms > 0);

    // Release the permit by finishing the holder's job.
    write_frame(&mut holder, FrameKind::End, &[]).unwrap();
    loop {
        let (kind, _) = read_frame(&mut holder).unwrap();
        match kind {
            FrameKind::Data => continue,
            FrameKind::Ok => break,
            other => panic!("holder job failed with {other:?}"),
        }
    }

    // The same connection retries after the hint and succeeds.
    std::thread::sleep(Duration::from_millis(u64::from(backoff_ms)));
    let reference = library_container(&data);
    let mut compressed = Vec::new();
    client.compress(wire_params(), data.as_slice(), &mut compressed).unwrap();
    assert_eq!(compressed, reference, "a shed-then-retried job must be byte-identical");

    let stats = client.stats().unwrap();
    assert!(stats.sheds >= 1, "the overload must be visible in the counters: {stats:?}");
    assert_eq!(stats.panics_caught, 0);

    drop(client);
    drop(holder);
    handle.shutdown();
    assert!(join.join().unwrap().clean);
}

#[test]
fn connection_cap_sheds_at_accept_and_retry_reconnects() {
    let config = ServerConfig { max_sessions: 1, ..ServerConfig::default() };
    let (handle, join) = start_server(config);
    let addr = handle.addr().to_string();

    // Occupy the only slot with an idle session.
    let mut occupant = connect_client(&handle);
    occupant.stats().unwrap();

    // The next connection is told Busy straight from the accept loop.
    let mut shed = connect_client(&handle);
    let err = shed.stats().unwrap_err();
    assert!(matches!(err, ClientError::Busy { .. }), "expected accept-shed Busy, got {err}");
    drop(shed);

    // Freeing the slot lets a retry (fresh connection) through.
    drop(occupant);
    let data = corpus(17, 50_000);
    let summary = gompresso_service::run_with_retry(&addr, Some(Duration::from_secs(10)), 20, |client| {
        client.compress(wire_params(), data.as_slice(), &mut Vec::new())
    })
    .unwrap();
    assert_eq!(summary.uncompressed, data.len() as u64);

    handle.shutdown();
    assert!(join.join().unwrap().clean);
}

#[test]
fn graceful_drain_finishes_inflight_work_and_refuses_new_connections() {
    let (handle, join) = start_server(ServerConfig::default());

    // An in-flight job: admitted, half the data sent.
    let data = corpus(42, 90_000);
    let reference = library_container(&data);
    let mut inflight = raw_connect(&handle);
    raw_start_compress(&mut inflight);
    write_frame(&mut inflight, FrameKind::Data, &data[..40_000]).unwrap();

    // Drain via the wire command.
    let mut admin = connect_client(&handle);
    admin.shutdown().unwrap();
    drop(admin);

    // New connections are refused while draining: either the connect
    // itself fails or the unserved socket dies without a response.
    std::thread::sleep(Duration::from_millis(100));
    let refused = match Client::connect(&handle.addr().to_string(), Some(Duration::from_secs(2))) {
        Err(_) => true,
        Ok(mut c) => c.stats().is_err(),
    };
    assert!(refused, "a drain must not serve new connections");

    // The in-flight session finishes its job normally.
    write_frame(&mut inflight, FrameKind::Data, &data[40_000..]).unwrap();
    write_frame(&mut inflight, FrameKind::End, &[]).unwrap();
    let mut compressed = Vec::new();
    loop {
        let (kind, payload) = read_frame(&mut inflight).unwrap();
        match kind {
            FrameKind::Data => compressed.extend_from_slice(&payload),
            FrameKind::Ok => break,
            other => panic!("in-flight job failed during drain: {other:?}"),
        }
    }
    assert_eq!(compressed, reference, "work admitted before the drain must finish correctly");
    drop(inflight);

    let report = join.join().unwrap();
    assert!(report.clean, "all sessions ended inside the deadline: {report:?}");
    assert_eq!(report.forced_sessions, 0);
}

#[test]
fn drain_deadline_forces_stuck_sessions() {
    let config = ServerConfig {
        drain_timeout: Duration::from_millis(300),
        // Long deadlines: the stuck session would outlive the drain many
        // times over if the deadline did not force it.
        io_timeout: Duration::from_secs(60),
        idle_timeout: Duration::from_secs(60),
        ..ServerConfig::default()
    };
    let (handle, join) = start_server(config);

    // A session parked mid-job that never sends another byte.
    let mut stuck = raw_connect(&handle);
    raw_start_compress(&mut stuck);

    handle.shutdown();
    let report = join.join().unwrap();
    assert!(!report.clean, "the stuck session cannot drain cleanly");
    assert_eq!(report.forced_sessions, 1);
    // The forced socket is dead from the client's side too.
    let mut probe = [0u8; 1];
    match stuck.read(&mut probe) {
        Ok(0) | Err(_) => {}
        Ok(_) => panic!("forced session still delivered bytes"),
    }
}
