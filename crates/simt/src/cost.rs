//! Converts execution counters into estimated GPU kernel times.
//!
//! The model is a classic roofline-with-critical-path estimate:
//!
//! * **compute time** — total warp instructions divided by the device's
//!   sustained issue rate, de-rated when too few warps are resident to hide
//!   latency (occupancy, limited by the Huffman LUT shared-memory footprint);
//! * **memory time** — global-memory traffic divided by sustained DRAM
//!   bandwidth, charged at transaction granularity so poorly coalesced
//!   back-reference copies cost more than streaming literal copies;
//! * **critical path** — the single longest warp (most instructions, most
//!   MRR rounds) executed at one instruction per clock; a kernel can never
//!   finish before its slowest warp, which is exactly why nesting depth
//!   hurts MRR in the paper's Figure 9c;
//! * plus a fixed kernel-launch overhead.
//!
//! The kernel time is the maximum of the three components plus the launch
//! overhead. The estimate is intentionally transparent rather than
//! cycle-accurate; `EXPERIMENTS.md` compares its output against the paper.

use crate::counters::KernelCounters;
use crate::device::{GpuDeviceModel, OccupancyModel};
use crate::pcie::PcieLink;

/// Breakdown of an estimated kernel execution time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTime {
    /// Instruction-issue-bound time in seconds.
    pub compute_s: f64,
    /// Memory-bandwidth-bound time in seconds.
    pub memory_s: f64,
    /// Longest-single-warp (critical path) time in seconds.
    pub critical_path_s: f64,
    /// Kernel launch overhead in seconds.
    pub launch_s: f64,
}

impl KernelTime {
    /// Total estimated kernel time (max of the bound components plus launch
    /// overhead).
    pub fn total(&self) -> f64 {
        self.compute_s.max(self.memory_s).max(self.critical_path_s) + self.launch_s
    }

    /// Which component dominates this kernel.
    pub fn bound_by(&self) -> &'static str {
        if self.memory_s >= self.compute_s && self.memory_s >= self.critical_path_s {
            "memory"
        } else if self.compute_s >= self.critical_path_s {
            "compute"
        } else {
            "critical-path"
        }
    }
}

/// GPU cost model: device parameters plus occupancy.
#[derive(Debug, Clone)]
pub struct CostModel {
    occupancy: OccupancyModel,
    pcie: PcieLink,
    /// Warps per multiprocessor required to reach full issue throughput
    /// (Kepler needs on the order of 16+ resident warps to hide latency).
    warps_for_full_issue: u32,
}

impl CostModel {
    /// Cost model for the paper's Tesla K40 with a PCIe 3.0 x16 link.
    pub fn tesla_k40() -> Self {
        Self::new(GpuDeviceModel::tesla_k40(), PcieLink::gen3_x16())
    }

    /// Creates a cost model from an arbitrary device and link description.
    pub fn new(device: GpuDeviceModel, pcie: PcieLink) -> Self {
        Self { occupancy: OccupancyModel::new(device), pcie, warps_for_full_issue: 16 }
    }

    /// The underlying device model.
    pub fn device(&self) -> &GpuDeviceModel {
        self.occupancy.device()
    }

    /// The PCIe link model.
    pub fn pcie(&self) -> &PcieLink {
        &self.pcie
    }

    /// The occupancy model.
    pub fn occupancy(&self) -> &OccupancyModel {
        &self.occupancy
    }

    /// Estimates the execution time of a kernel described by `counters`,
    /// where each thread group uses `shared_bytes_per_group` bytes of shared
    /// memory and `warps_per_group` warps (1 for Gompresso's decompression
    /// kernels).
    pub fn estimate_kernel(
        &self,
        counters: &KernelCounters,
        shared_bytes_per_group: u32,
        warps_per_group: u32,
    ) -> KernelTime {
        let device = self.device();
        if counters.warps == 0 {
            return KernelTime { compute_s: 0.0, memory_s: 0.0, critical_path_s: 0.0, launch_s: 0.0 };
        }

        // Occupancy de-rating: fewer resident warps per MP than needed for
        // latency hiding scales down the sustained issue rate.
        let groups_per_mp = self.occupancy.groups_per_mp(shared_bytes_per_group, warps_per_group).max(1);
        let resident_warps_per_mp = groups_per_mp * warps_per_group.max(1);
        let occupancy_factor =
            (f64::from(resident_warps_per_mp) / f64::from(self.warps_for_full_issue)).min(1.0);

        // If the grid is smaller than the device, only part of the machine
        // is busy at all.
        let usable_mps = (counters.warps as f64 / f64::from(warps_per_group.max(1)))
            .min(f64::from(device.multiprocessors) * f64::from(groups_per_mp))
            / f64::from(groups_per_mp);
        let grid_factor = (usable_mps / f64::from(device.multiprocessors))
            .min(1.0)
            .max(1.0 / f64::from(device.multiprocessors));

        let issue_rate = device.peak_issue_rate() * occupancy_factor * grid_factor;
        let compute_s = counters.totals.instructions as f64 / issue_rate;

        // Memory traffic at transaction granularity (32-byte sectors).
        let effective_bytes = (counters.totals.global_transactions * 32)
            .max(counters.totals.global_read_bytes + counters.totals.global_write_bytes);
        let memory_s = effective_bytes as f64 / device.sustained_memory_bandwidth();

        // Critical path: the slowest warp issues roughly one instruction per
        // clock once resident.
        let critical_path_s = counters.max_warp_instructions as f64 / device.clock_hz;

        KernelTime { compute_s, memory_s, critical_path_s, launch_s: device.kernel_launch_overhead }
    }

    /// Host→device transfer time for `bytes` of compressed input.
    pub fn input_transfer_s(&self, bytes: u64) -> f64 {
        self.pcie.transfer_time(bytes)
    }

    /// Device→host transfer time for `bytes` of decompressed output.
    pub fn output_transfer_s(&self, bytes: u64) -> f64 {
        self.pcie.transfer_time(bytes)
    }

    /// Decompression bandwidth in bytes/second given uncompressed size and
    /// total time.
    pub fn bandwidth(uncompressed_bytes: u64, total_seconds: f64) -> f64 {
        if total_seconds <= 0.0 {
            return 0.0;
        }
        uncompressed_bytes as f64 / total_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::WarpCounters;

    fn kernel_with(warps: u64, instr_per_warp: u64, bytes_per_warp: u64) -> KernelCounters {
        let mut k = KernelCounters::new();
        for _ in 0..warps {
            let mut w = WarpCounters::new();
            w.charge_instructions(instr_per_warp);
            w.charge_memory(crate::MemoryScope::Global, bytes_per_warp, true, true);
            k.add_warp(&w);
        }
        k
    }

    #[test]
    fn empty_kernel_is_free() {
        let model = CostModel::tesla_k40();
        let t = model.estimate_kernel(&KernelCounters::new(), 0, 1);
        assert_eq!(t.total(), 0.0);
    }

    #[test]
    fn memory_bound_kernel_reports_memory() {
        let model = CostModel::tesla_k40();
        // Very few instructions, lots of bytes.
        let k = kernel_with(10_000, 10, 1 << 20);
        let t = model.estimate_kernel(&k, 0, 1);
        assert_eq!(t.bound_by(), "memory");
        // 10 GiB at ~216 GB/s sustained ≈ 46 ms.
        assert!(t.memory_s > 0.01 && t.memory_s < 0.2, "memory_s = {}", t.memory_s);
    }

    #[test]
    fn compute_bound_kernel_reports_compute() {
        let model = CostModel::tesla_k40();
        // Many instructions, almost no memory traffic.
        let k = kernel_with(10_000, 100_000, 16);
        let t = model.estimate_kernel(&k, 0, 1);
        assert!(t.compute_s > t.memory_s);
    }

    #[test]
    fn single_slow_warp_sets_critical_path() {
        let model = CostModel::tesla_k40();
        let mut k = KernelCounters::new();
        let mut slow = WarpCounters::new();
        slow.charge_instructions(10_000_000);
        k.add_warp(&slow);
        for _ in 0..99 {
            let mut w = WarpCounters::new();
            w.charge_instructions(10);
            k.add_warp(&w);
        }
        let t = model.estimate_kernel(&k, 0, 1);
        assert_eq!(t.bound_by(), "critical-path");
        // 10M instructions at 745 MHz ≈ 13.4 ms.
        assert!((t.critical_path_s - 10_000_000.0 / 745.0e6).abs() < 1e-9);
    }

    #[test]
    fn lower_occupancy_slows_compute() {
        let model = CostModel::tesla_k40();
        let k = kernel_with(10_000, 10_000, 64);
        let high_occ = model.estimate_kernel(&k, OccupancyModel::huffman_lut_bytes(10), 1);
        let low_occ = model.estimate_kernel(&k, OccupancyModel::huffman_lut_bytes(12), 1);
        assert!(low_occ.compute_s > high_occ.compute_s);
    }

    #[test]
    fn tiny_grid_cannot_use_whole_device() {
        let model = CostModel::tesla_k40();
        let small = kernel_with(1, 1_000_000, 64);
        let large = kernel_with(1_000, 1_000_000, 64);
        let t_small = model.estimate_kernel(&small, 0, 1);
        let t_large = model.estimate_kernel(&large, 0, 1);
        // 1000× the total work on a full device should take much less than
        // 1000× the single-warp time.
        assert!(t_large.compute_s < t_small.compute_s * 200.0);
    }

    #[test]
    fn bandwidth_helper() {
        assert_eq!(CostModel::bandwidth(1_000_000, 0.0), 0.0);
        let gbps = CostModel::bandwidth(2 * 1_000_000_000, 1.0);
        assert!((gbps - 2.0e9).abs() < 1.0);
    }
}
