//! Analytical GPU device model.
//!
//! The paper evaluates on an NVIDIA Tesla K40: 15 SMX multiprocessors,
//! 2880 CUDA cores, 745 MHz base clock, 288 GB/s GDDR5 bandwidth, 48 KB of
//! software-managed shared memory per SMX. Two of these parameters drive the
//! paper's analysis directly:
//!
//! * the ratio of compute throughput to DRAM bandwidth decides whether a
//!   kernel is compute- or memory-bound, and
//! * the shared-memory capacity limits how many data blocks can be Huffman
//!   decoded concurrently on one SMX, because each block needs two
//!   `2^CWL`-entry decode LUTs resident in shared memory (Section V-C).
//!
//! [`GpuDeviceModel`] captures these parameters; [`OccupancyModel`] derives
//! the number of concurrently resident warps from the per-block shared
//! memory footprint.

/// Static description of a GPU device.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuDeviceModel {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of streaming multiprocessors (SMX on Kepler).
    pub multiprocessors: u32,
    /// CUDA cores per multiprocessor.
    pub cores_per_mp: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Peak device-memory bandwidth in bytes/second.
    pub memory_bandwidth: f64,
    /// Fraction of the peak memory bandwidth achievable by well-coalesced
    /// streaming kernels (ECC on reduces this on the K40).
    pub memory_efficiency: f64,
    /// Shared memory per multiprocessor in bytes.
    pub shared_memory_per_mp: u32,
    /// Maximum resident warps per multiprocessor (64 on Kepler).
    pub max_warps_per_mp: u32,
    /// Maximum resident thread groups per multiprocessor.
    pub max_groups_per_mp: u32,
    /// Warp instructions issued per multiprocessor per clock (Kepler SMX can
    /// issue up to 4 warps × 2 instructions; a conservative sustained value
    /// is used here).
    pub issue_per_mp_per_clock: f64,
    /// Kernel launch overhead in seconds.
    pub kernel_launch_overhead: f64,
    /// Board power in watts when busy (used by the energy model).
    pub board_power_w: f64,
    /// Board power in watts when idle.
    pub idle_power_w: f64,
}

impl GpuDeviceModel {
    /// The Tesla K40 configuration used throughout the paper's evaluation.
    pub fn tesla_k40() -> Self {
        GpuDeviceModel {
            name: "NVIDIA Tesla K40",
            multiprocessors: 15,
            cores_per_mp: 192,
            clock_hz: 745.0e6,
            memory_bandwidth: 288.0e9,
            // ECC is enabled in the paper's measurements, which costs
            // roughly 20 % of streaming bandwidth on GDDR5 Kepler boards.
            memory_efficiency: 0.75,
            shared_memory_per_mp: 48 * 1024,
            max_warps_per_mp: 64,
            max_groups_per_mp: 16,
            issue_per_mp_per_clock: 4.0,
            kernel_launch_overhead: 10.0e-6,
            board_power_w: 235.0,
            idle_power_w: 25.0,
        }
    }

    /// A smaller, slower GPU useful in tests for exercising occupancy limits
    /// without large inputs.
    pub fn small_test_gpu() -> Self {
        GpuDeviceModel {
            name: "test-gpu",
            multiprocessors: 2,
            cores_per_mp: 64,
            clock_hz: 100.0e6,
            memory_bandwidth: 10.0e9,
            memory_efficiency: 0.8,
            shared_memory_per_mp: 16 * 1024,
            max_warps_per_mp: 8,
            max_groups_per_mp: 4,
            issue_per_mp_per_clock: 1.0,
            kernel_launch_overhead: 5.0e-6,
            board_power_w: 50.0,
            idle_power_w: 5.0,
        }
    }

    /// Total CUDA cores on the device.
    pub fn total_cores(&self) -> u32 {
        self.multiprocessors * self.cores_per_mp
    }

    /// Aggregate warp-instruction issue rate (instructions/second).
    pub fn peak_issue_rate(&self) -> f64 {
        f64::from(self.multiprocessors) * self.issue_per_mp_per_clock * self.clock_hz
    }

    /// Sustained device-memory bandwidth in bytes/second.
    pub fn sustained_memory_bandwidth(&self) -> f64 {
        self.memory_bandwidth * self.memory_efficiency
    }
}

/// Derives how many warps / thread groups are concurrently resident given
/// the per-group shared-memory footprint.
///
/// In Gompresso each thread group handles one data block and needs shared
/// memory for its two Huffman decode LUTs (2 × 2^CWL entries × entry size);
/// the paper limits CWL to 10 bits so that enough groups stay resident.
#[derive(Debug, Clone)]
pub struct OccupancyModel {
    device: GpuDeviceModel,
}

impl OccupancyModel {
    /// Creates an occupancy model for `device`.
    pub fn new(device: GpuDeviceModel) -> Self {
        Self { device }
    }

    /// The underlying device.
    pub fn device(&self) -> &GpuDeviceModel {
        &self.device
    }

    /// Number of thread groups resident per multiprocessor when each group
    /// uses `shared_bytes_per_group` bytes of shared memory and
    /// `warps_per_group` warps.
    pub fn groups_per_mp(&self, shared_bytes_per_group: u32, warps_per_group: u32) -> u32 {
        let by_shared = self
            .device
            .shared_memory_per_mp
            .checked_div(shared_bytes_per_group)
            .unwrap_or(self.device.max_groups_per_mp);
        let by_warps = self
            .device
            .max_warps_per_mp
            .checked_div(warps_per_group)
            .unwrap_or(self.device.max_groups_per_mp);
        by_shared.min(by_warps).min(self.device.max_groups_per_mp)
    }

    /// Total number of warps concurrently resident on the whole device.
    pub fn resident_warps(&self, shared_bytes_per_group: u32, warps_per_group: u32) -> u32 {
        self.groups_per_mp(shared_bytes_per_group, warps_per_group)
            * warps_per_group.max(1)
            * self.device.multiprocessors
    }

    /// Shared-memory footprint of the Huffman decode tables for one data
    /// block: two LUTs (literal/length and match-offset trees) of
    /// `2^max_codeword_len` entries, each entry holding a 16-bit symbol and
    /// an 8-bit code length (padded to 4 bytes, as a real implementation
    /// would for bank-conflict-free access).
    pub fn huffman_lut_bytes(max_codeword_len: u32) -> u32 {
        2 * (1u32 << max_codeword_len) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40_parameters_are_consistent() {
        let k40 = GpuDeviceModel::tesla_k40();
        assert_eq!(k40.total_cores(), 2880);
        assert!(k40.peak_issue_rate() > 1e9);
        assert!(k40.sustained_memory_bandwidth() < k40.memory_bandwidth);
    }

    #[test]
    fn huffman_lut_footprint_matches_cwl() {
        // CWL = 10 → 2 tables × 1024 entries × 4 bytes = 8 KiB.
        assert_eq!(OccupancyModel::huffman_lut_bytes(10), 8 * 1024);
        // CWL = 12 → 32 KiB, which nearly fills a 48 KiB SMX on its own.
        assert_eq!(OccupancyModel::huffman_lut_bytes(12), 32 * 1024);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let occ = OccupancyModel::new(GpuDeviceModel::tesla_k40());
        // CWL=10: 8 KiB per group → 6 groups fit in 48 KiB, below the
        // hardware group limit of 16.
        assert_eq!(occ.groups_per_mp(OccupancyModel::huffman_lut_bytes(10), 1), 6);
        // CWL=12: 32 KiB per group → only 1 group per SMX.
        assert_eq!(occ.groups_per_mp(OccupancyModel::huffman_lut_bytes(12), 1), 1);
        // No shared memory use → limited by the hardware group cap.
        assert_eq!(occ.groups_per_mp(0, 1), 16);
    }

    #[test]
    fn occupancy_limited_by_warps() {
        let occ = OccupancyModel::new(GpuDeviceModel::tesla_k40());
        // 8 warps per group with tiny shared use → limited by 64/8 = 8.
        assert_eq!(occ.groups_per_mp(1024, 8), 8);
        assert_eq!(occ.resident_warps(1024, 8), 8 * 8 * 15);
    }

    #[test]
    fn resident_warps_scale_with_multiprocessors() {
        let occ = OccupancyModel::new(GpuDeviceModel::small_test_gpu());
        let warps = occ.resident_warps(OccupancyModel::huffman_lut_bytes(10), 1);
        // 16 KiB shared / 8 KiB per group = 2 groups per MP × 2 MPs.
        assert_eq!(warps, 4);
    }
}
