//! PCI Express link model.
//!
//! The paper's Figure 13 distinguishes three reporting modes for the GPU
//! decompressor: no transfers (`No PCIe`), compressed input transferred to
//! the device (`In`), and both input and decompressed output transferred
//! (`In/Out`). Gompresso/Byte turns out to be *bound* by the PCIe 3.0 x16
//! link (nominal 16 GB/s, ~13 GB/s measured in the paper's own bandwidth
//! test). This module provides the link model used to add those transfer
//! costs to the simulated kernel times.

/// PCI Express generation (per-lane raw signalling rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcieGeneration {
    /// PCIe 2.0: 5 GT/s, 8b/10b encoding.
    Gen2,
    /// PCIe 3.0: 8 GT/s, 128b/130b encoding (the paper's system).
    Gen3,
    /// PCIe 4.0: 16 GT/s, 128b/130b encoding.
    Gen4,
}

impl PcieGeneration {
    /// Effective payload bandwidth per lane in bytes/second after encoding
    /// overhead.
    pub fn per_lane_bandwidth(self) -> f64 {
        match self {
            PcieGeneration::Gen2 => 5.0e9 / 10.0 * 8.0 / 8.0 * 0.8 / 0.8 / 2.0 * 2.0 / 2.0, // 500 MB/s
            PcieGeneration::Gen3 => 8.0e9 * (128.0 / 130.0) / 8.0,                          // ≈ 985 MB/s
            PcieGeneration::Gen4 => 16.0e9 * (128.0 / 130.0) / 8.0,                         // ≈ 1969 MB/s
        }
    }
}

/// A host↔device PCIe link.
#[derive(Debug, Clone, PartialEq)]
pub struct PcieLink {
    /// Link generation.
    pub generation: PcieGeneration,
    /// Number of lanes (x16 in the paper's system).
    pub lanes: u32,
    /// Fraction of nominal bandwidth achievable in practice (protocol and
    /// DMA overheads). The paper measures 13 GB/s against a 16 GB/s nominal
    /// link, i.e. ≈ 0.82.
    pub efficiency: f64,
    /// Fixed per-transfer latency in seconds (driver + DMA setup).
    pub latency: f64,
}

impl PcieLink {
    /// PCIe 3.0 x16 link as measured in the paper (≈13 GB/s sustained).
    pub fn gen3_x16() -> Self {
        PcieLink { generation: PcieGeneration::Gen3, lanes: 16, efficiency: 0.825, latency: 15.0e-6 }
    }

    /// Nominal (marketing) bandwidth of the link in bytes/second.
    pub fn nominal_bandwidth(&self) -> f64 {
        self.generation.per_lane_bandwidth() * f64::from(self.lanes)
    }

    /// Sustained bandwidth in bytes/second.
    pub fn sustained_bandwidth(&self) -> f64 {
        self.nominal_bandwidth() * self.efficiency
    }

    /// Time in seconds to move `bytes` bytes in one direction.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency + bytes as f64 / self.sustained_bandwidth()
    }

    /// Time to move `in_bytes` to the device and `out_bytes` back, assuming
    /// the two directions are not overlapped (the paper reports end-to-end
    /// times without overlapping transfers and kernels).
    pub fn round_trip_time(&self, in_bytes: u64, out_bytes: u64) -> f64 {
        self.transfer_time(in_bytes) + self.transfer_time(out_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen3_x16_matches_paper_figures() {
        let link = PcieLink::gen3_x16();
        let nominal = link.nominal_bandwidth();
        // Nominal ≈ 15.75 GB/s ("16 GB/s" in the paper).
        assert!(nominal > 15.0e9 && nominal < 16.5e9, "nominal = {nominal}");
        let sustained = link.sustained_bandwidth();
        // Sustained ≈ 13 GB/s as measured in the paper.
        assert!(sustained > 12.5e9 && sustained < 13.5e9, "sustained = {sustained}");
    }

    #[test]
    fn transfer_time_scales_linearly_plus_latency() {
        let link = PcieLink::gen3_x16();
        let t1 = link.transfer_time(1 << 30);
        let t2 = link.transfer_time(2 << 30);
        // Doubling the payload should roughly double the time (latency is
        // negligible at 1 GiB).
        assert!((t2 / t1 - 2.0).abs() < 0.01);
        assert_eq!(link.transfer_time(0), 0.0);
        // A tiny transfer is dominated by latency.
        assert!(link.transfer_time(1) >= link.latency);
    }

    #[test]
    fn round_trip_is_sum_of_directions() {
        let link = PcieLink::gen3_x16();
        let rt = link.round_trip_time(1000, 3000);
        assert!((rt - (link.transfer_time(1000) + link.transfer_time(3000))).abs() < 1e-12);
    }

    #[test]
    fn generations_are_ordered() {
        assert!(PcieGeneration::Gen2.per_lane_bandwidth() < PcieGeneration::Gen3.per_lane_bandwidth());
        assert!(PcieGeneration::Gen3.per_lane_bandwidth() < PcieGeneration::Gen4.per_lane_bandwidth());
    }
}
