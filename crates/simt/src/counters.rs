//! Execution counters collected by the warp simulator.
//!
//! The cost model (see [`crate::cost`]) converts these counters into
//! estimated kernel times. The decompression kernels in `gompresso-core`
//! charge counters explicitly at the points where the corresponding GPU
//! implementation would issue warp instructions or memory transactions, so
//! the counts reflect the algorithm described in the paper rather than the
//! host CPU's instruction stream.

/// Which memory space a simulated access targets.
///
/// The distinction matters for the cost model: shared (on-chip) memory
/// accesses are charged at register-like latency, while global (device
/// DRAM) accesses are charged against the K40's memory bandwidth, and the
/// number of *transactions* depends on coalescing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryScope {
    /// Off-chip device memory (GDDR5 on the K40).
    Global,
    /// On-chip, software-managed shared memory (the paper stores the
    /// Huffman decode LUTs here).
    Shared,
}

/// Counters accumulated by a single warp while executing a kernel.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WarpCounters {
    /// Warp-wide instructions issued (each counted once per warp, as on a
    /// real SIMT machine where one instruction covers all 32 lanes).
    pub instructions: u64,
    /// Warp-vote (`ballot`) instructions issued.
    pub ballots: u64,
    /// Warp-shuffle (`shfl`) instructions issued.
    pub shuffles: u64,
    /// Number of times the warp executed a branch where lanes diverged.
    pub divergent_branches: u64,
    /// Number of iterations of an iterative resolution loop (MRR rounds).
    pub rounds: u64,
    /// Bytes read from global memory.
    pub global_read_bytes: u64,
    /// Bytes written to global memory.
    pub global_write_bytes: u64,
    /// Global memory transactions (128-byte segments touched).
    pub global_transactions: u64,
    /// Bytes read from shared memory.
    pub shared_read_bytes: u64,
    /// Bytes written to shared memory.
    pub shared_write_bytes: u64,
    /// Sum over rounds of the number of active (non-idle) lanes; divided by
    /// `rounds * 32` this yields the warp utilization the paper discusses
    /// for MRR.
    pub active_lane_sum: u64,
}

impl WarpCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `n` warp-wide ALU/control instructions.
    pub fn charge_instructions(&mut self, n: u64) {
        self.instructions += n;
    }

    /// Charges a ballot instruction.
    pub fn charge_ballot(&mut self) {
        self.ballots += 1;
        self.instructions += 1;
    }

    /// Charges a shuffle instruction.
    pub fn charge_shuffle(&mut self) {
        self.shuffles += 1;
        self.instructions += 1;
    }

    /// Records a divergent branch (lanes took different paths).
    pub fn charge_divergence(&mut self) {
        self.divergent_branches += 1;
        self.instructions += 1;
    }

    /// Records the start of a resolution round with `active_lanes` lanes
    /// doing useful work.
    pub fn charge_round(&mut self, active_lanes: u32) {
        self.rounds += 1;
        self.active_lane_sum += u64::from(active_lanes);
    }

    /// Charges a memory access of `bytes` bytes in `scope`.
    ///
    /// For global memory the access is additionally translated into 128-byte
    /// transactions: `coalesced` accesses touch contiguous addresses and are
    /// charged `ceil(bytes / 128)` transactions, while non-coalesced accesses
    /// are charged one transaction per 32-byte segment, which is the paper's
    /// motivation for having each thread copy multiple back-reference bytes
    /// at a time.
    pub fn charge_memory(&mut self, scope: MemoryScope, bytes: u64, write: bool, coalesced: bool) {
        match scope {
            MemoryScope::Global => {
                if write {
                    self.global_write_bytes += bytes;
                } else {
                    self.global_read_bytes += bytes;
                }
                let segment = if coalesced { 128 } else { 32 };
                self.global_transactions += bytes.div_ceil(segment).max(1);
                self.instructions += 1;
            }
            MemoryScope::Shared => {
                if write {
                    self.shared_write_bytes += bytes;
                } else {
                    self.shared_read_bytes += bytes;
                }
                self.instructions += 1;
            }
        }
    }

    /// Fraction of lanes active per round, in `[0, 1]`. Returns 1.0 when no
    /// rounds were recorded (nothing to be idle in).
    pub fn warp_utilization(&self) -> f64 {
        if self.rounds == 0 {
            1.0
        } else {
            self.active_lane_sum as f64 / (self.rounds as f64 * 32.0)
        }
    }

    /// Merges another warp's counters into this one.
    pub fn merge(&mut self, other: &WarpCounters) {
        self.instructions += other.instructions;
        self.ballots += other.ballots;
        self.shuffles += other.shuffles;
        self.divergent_branches += other.divergent_branches;
        self.rounds += other.rounds;
        self.global_read_bytes += other.global_read_bytes;
        self.global_write_bytes += other.global_write_bytes;
        self.global_transactions += other.global_transactions;
        self.shared_read_bytes += other.shared_read_bytes;
        self.shared_write_bytes += other.shared_write_bytes;
        self.active_lane_sum += other.active_lane_sum;
    }
}

/// Counters aggregated over all warps of a kernel launch.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct KernelCounters {
    /// Aggregate of all per-warp counters.
    pub totals: WarpCounters,
    /// Number of warps that contributed (one per data block in Gompresso).
    pub warps: u64,
    /// Maximum instruction count observed in a single warp — the critical
    /// path when warps outnumber execution resources only marginally.
    pub max_warp_instructions: u64,
    /// Maximum number of MRR rounds observed in any warp.
    pub max_rounds: u64,
}

impl KernelCounters {
    /// Creates zeroed kernel counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one finished warp's counters into the kernel aggregate.
    pub fn add_warp(&mut self, warp: &WarpCounters) {
        self.totals.merge(warp);
        self.warps += 1;
        self.max_warp_instructions = self.max_warp_instructions.max(warp.instructions);
        self.max_rounds = self.max_rounds.max(warp.rounds);
    }

    /// Merges another kernel's counters (e.g. decode + decompress phases).
    pub fn merge(&mut self, other: &KernelCounters) {
        self.totals.merge(&other.totals);
        self.warps += other.warps;
        self.max_warp_instructions = self.max_warp_instructions.max(other.max_warp_instructions);
        self.max_rounds = self.max_rounds.max(other.max_rounds);
    }

    /// Mean MRR rounds per warp, or 0 when no warps ran.
    pub fn mean_rounds(&self) -> f64 {
        if self.warps == 0 {
            0.0
        } else {
            self.totals.rounds as f64 / self.warps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_charging_tracks_bytes_and_transactions() {
        let mut c = WarpCounters::new();
        c.charge_memory(MemoryScope::Global, 256, false, true);
        assert_eq!(c.global_read_bytes, 256);
        assert_eq!(c.global_transactions, 2); // 256 / 128

        c.charge_memory(MemoryScope::Global, 256, true, false);
        assert_eq!(c.global_write_bytes, 256);
        assert_eq!(c.global_transactions, 2 + 8); // + 256 / 32

        c.charge_memory(MemoryScope::Shared, 40, false, true);
        assert_eq!(c.shared_read_bytes, 40);
        // Shared accesses do not create global transactions.
        assert_eq!(c.global_transactions, 10);
    }

    #[test]
    fn tiny_global_access_still_costs_one_transaction() {
        let mut c = WarpCounters::new();
        c.charge_memory(MemoryScope::Global, 1, false, true);
        assert_eq!(c.global_transactions, 1);
    }

    #[test]
    fn utilization_is_active_over_possible() {
        let mut c = WarpCounters::new();
        assert_eq!(c.warp_utilization(), 1.0);
        c.charge_round(32);
        c.charge_round(8);
        assert!((c.warp_utilization() - (40.0 / 64.0)).abs() < 1e-12);
    }

    #[test]
    fn kernel_aggregation_tracks_maxima() {
        let mut k = KernelCounters::new();
        let mut w1 = WarpCounters::new();
        w1.charge_instructions(100);
        w1.charge_round(32);
        let mut w2 = WarpCounters::new();
        w2.charge_instructions(300);
        w2.charge_round(16);
        w2.charge_round(4);
        k.add_warp(&w1);
        k.add_warp(&w2);
        assert_eq!(k.warps, 2);
        assert_eq!(k.max_warp_instructions, 300);
        assert_eq!(k.max_rounds, 2);
        assert!((k.mean_rounds() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = WarpCounters::new();
        a.charge_ballot();
        a.charge_shuffle();
        let mut b = WarpCounters::new();
        b.charge_ballot();
        b.charge_divergence();
        a.merge(&b);
        assert_eq!(a.ballots, 2);
        assert_eq!(a.shuffles, 1);
        assert_eq!(a.divergent_branches, 1);
        assert_eq!(a.instructions, 4);
    }
}
