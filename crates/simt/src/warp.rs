//! Deterministic warp-level primitives.
//!
//! A warp is 32 threads executing in lock step. GPU kernels coordinate the
//! lanes of a warp with voting (`ballot`) and data-exchange (`shfl`)
//! instructions; the Gompresso decompressor uses exactly these two (paper,
//! Section II-B and Figure 5). This module models a warp as explicit
//! 32-element lane-state arrays and provides the same primitives as pure
//! functions plus a [`Warp`] wrapper that also charges the corresponding
//! instruction costs to a [`WarpCounters`] record.
//!
//! Writing the decompression kernels against these primitives keeps them a
//! line-by-line transliteration of the paper's warp-synchronous pseudo-code
//! while remaining ordinary, safe, deterministic Rust.

use crate::counters::{MemoryScope, WarpCounters};

/// Number of lanes in a warp (fixed at 32 on all CUDA hardware to date, and
/// assumed by the paper's use of 32-bit ballot masks).
pub const WARP_SIZE: usize = 32;

/// Result of a warp vote: one bit per lane, lane `i` at bit `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpMask(pub u32);

impl WarpMask {
    /// Mask with no lanes set.
    pub const EMPTY: WarpMask = WarpMask(0);
    /// Mask with all 32 lanes set.
    pub const FULL: WarpMask = WarpMask(u32::MAX);

    /// Builds a mask from per-lane predicate values.
    pub fn from_lanes(lanes: &[bool; WARP_SIZE]) -> Self {
        let mut bits = 0u32;
        for (i, &b) in lanes.iter().enumerate() {
            if b {
                bits |= 1 << i;
            }
        }
        WarpMask(bits)
    }

    /// Whether no lane is set.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of lanes set.
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether lane `lane` is set.
    pub fn lane(&self, lane: usize) -> bool {
        debug_assert!(lane < WARP_SIZE);
        self.0 & (1 << lane) != 0
    }

    /// Lowest set lane, if any.
    pub fn first_set(&self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Highest set lane, if any.
    pub fn last_set(&self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(31 - self.0.leading_zeros() as usize)
        }
    }

    /// Number of leading zero bits, i.e. unset lanes above the highest set
    /// lane (this is the `count_leading_zero_bits` of the paper's Figure 5).
    pub fn leading_zeros(&self) -> u32 {
        self.0.leading_zeros()
    }

    /// Number of consecutive set lanes starting at lane 0.
    ///
    /// Used by the MRR high-water-mark update: if the "done" mask has a set
    /// prefix of length `p`, lanes `0..p` have all written their output and
    /// the gap-free output extends past lane `p - 1`'s write range.
    pub fn contiguous_prefix_len(&self) -> u32 {
        (!self.0).trailing_zeros().min(WARP_SIZE as u32)
    }

    /// Bitwise complement restricted to the 32 lanes.
    pub fn complement(&self) -> WarpMask {
        WarpMask(!self.0)
    }
}

/// Pure ballot: collects one predicate bit per lane into a mask.
pub fn ballot(lanes: &[bool; WARP_SIZE]) -> WarpMask {
    WarpMask::from_lanes(lanes)
}

/// Pure shuffle: every lane reads the value held by `src_lane`.
///
/// Mirrors CUDA `__shfl_sync(mask, v, src_lane)` with a full mask. Panics if
/// `src_lane >= 32`, which on real hardware would be an undefined lane read;
/// the decompressor never produces such a lane index.
pub fn shfl<T: Copy>(values: &[T; WARP_SIZE], src_lane: usize) -> T {
    assert!(src_lane < WARP_SIZE, "shfl from out-of-range lane {src_lane}");
    values[src_lane]
}

/// Pure shuffle-up: lane `i` reads the value of lane `i - delta`; lanes with
/// `i < delta` keep their own value (CUDA `__shfl_up_sync` semantics).
pub fn shfl_up<T: Copy>(values: &[T; WARP_SIZE], delta: usize) -> [T; WARP_SIZE] {
    let mut out = *values;
    for i in (delta..WARP_SIZE).rev() {
        out[i] = values[i - delta];
    }
    out
}

/// Iterator over lane ids `0..32`, provided for readability at call sites.
pub fn lane_id_iter() -> impl Iterator<Item = usize> {
    0..WARP_SIZE
}

/// Pure lane-by-lane Hillis–Steele exclusive prefix sum (5 shuffle-up/add
/// steps), retained as the executable reference for
/// [`Warp::exclusive_prefix_sum`]'s linear host computation.
pub fn exclusive_prefix_sum_reference(values: &[u64; WARP_SIZE]) -> ([u64; WARP_SIZE], u64) {
    let mut inclusive = *values;
    let mut delta = 1usize;
    while delta < WARP_SIZE {
        let shifted = shfl_up(&inclusive, delta);
        for i in lane_id_iter() {
            if i >= delta {
                inclusive[i] += shifted[i];
            }
        }
        delta <<= 1;
    }
    let total = inclusive[WARP_SIZE - 1];
    let mut exclusive = [0u64; WARP_SIZE];
    exclusive[1..].copy_from_slice(&inclusive[..WARP_SIZE - 1]);
    (exclusive, total)
}

/// A warp execution context: the warp-level primitives plus cost accounting.
///
/// Kernels hold one `Warp` per simulated warp and call its methods instead of
/// the free functions so that every ballot, shuffle, prefix sum and memory
/// access is charged to the counters that the GPU cost model later consumes.
#[derive(Debug, Default, Clone)]
pub struct Warp {
    counters: WarpCounters,
}

impl Warp {
    /// Creates a warp with zeroed counters.
    pub fn new() -> Self {
        Self { counters: WarpCounters::new() }
    }

    /// Read-only access to the accumulated counters.
    pub fn counters(&self) -> &WarpCounters {
        &self.counters
    }

    /// Consumes the warp, returning its counters.
    pub fn into_counters(self) -> WarpCounters {
        self.counters
    }

    /// Warp vote across the lanes (charged as one `ballot` instruction).
    pub fn ballot(&mut self, lanes: &[bool; WARP_SIZE]) -> WarpMask {
        self.counters.charge_ballot();
        ballot(lanes)
    }

    /// Warp vote whose per-lane predicates the caller already holds as a
    /// bitmask. Charges exactly like [`Self::ballot`]; kernels that track
    /// lane state in masks (the MRR resolver) use it to avoid materializing
    /// a `[bool; 32]` just to vote on it.
    pub fn ballot_mask(&mut self, mask: WarpMask) -> WarpMask {
        self.counters.charge_ballot();
        mask
    }

    /// Broadcast of lane `src_lane`'s value to all lanes (one `shfl`).
    pub fn shfl<T: Copy>(&mut self, values: &[T; WARP_SIZE], src_lane: usize) -> T {
        self.counters.charge_shuffle();
        shfl(values, src_lane)
    }

    /// Exclusive prefix sum across the warp, charged as the standard
    /// shuffle-up/Hillis–Steele scheme (5 shuffle steps for 32 lanes).
    ///
    /// Lane `i` of the result holds `sum(values[0..i])`; the total sum is
    /// additionally returned, which the decompressor uses to advance its
    /// output cursor by the bytes produced by the whole group of sequences.
    ///
    /// The *charges* model the warp algorithm; the values themselves are
    /// computed with a linear host pass, which is exact-identical for `u64`
    /// addition and keeps this off the decompression hot path's flame graph
    /// (two calls per 32-sequence group). [`exclusive_prefix_sum_reference`]
    /// retains the lane-by-lane Hillis–Steele walk for tests.
    pub fn exclusive_prefix_sum(&mut self, values: &[u64; WARP_SIZE]) -> ([u64; WARP_SIZE], u64) {
        // log2(32) = 5 shuffle+add steps, each one warp instruction pair.
        let mut delta = 1usize;
        while delta < WARP_SIZE {
            self.counters.charge_shuffle();
            self.counters.charge_instructions(1);
            delta <<= 1;
        }
        let mut exclusive = [0u64; WARP_SIZE];
        let mut acc = 0u64;
        for (out, &v) in exclusive.iter_mut().zip(values.iter()) {
            *out = acc;
            acc += v;
        }
        (exclusive, acc)
    }

    /// Records a branch whose outcome differs across lanes.
    ///
    /// `taken` is the mask of lanes taking the branch; divergence is charged
    /// only if the warp is split (some but not all active lanes take it).
    pub fn branch(&mut self, taken: WarpMask, active: WarpMask) {
        let taken_active = taken.0 & active.0;
        if taken_active != 0 && taken_active != active.0 {
            self.counters.charge_divergence();
        } else {
            self.counters.charge_instructions(1);
        }
    }

    /// Records the start of an iterative-resolution round with the given
    /// number of lanes doing useful work.
    pub fn begin_round(&mut self, active_lanes: u32) {
        self.counters.charge_round(active_lanes);
    }

    /// Charges `n` ordinary warp instructions.
    pub fn charge_instructions(&mut self, n: u64) {
        self.counters.charge_instructions(n);
    }

    /// Charges a global-memory read of `bytes` bytes.
    pub fn global_read(&mut self, bytes: u64, coalesced: bool) {
        self.counters.charge_memory(MemoryScope::Global, bytes, false, coalesced);
    }

    /// Charges a global-memory write of `bytes` bytes.
    pub fn global_write(&mut self, bytes: u64, coalesced: bool) {
        self.counters.charge_memory(MemoryScope::Global, bytes, true, coalesced);
    }

    /// Charges a shared-memory read of `bytes` bytes (Huffman LUT lookups).
    pub fn shared_read(&mut self, bytes: u64) {
        self.counters.charge_memory(MemoryScope::Shared, bytes, false, true);
    }

    /// Charges a shared-memory write of `bytes` bytes (LUT construction).
    pub fn shared_write(&mut self, bytes: u64) {
        self.counters.charge_memory(MemoryScope::Shared, bytes, true, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ballot_packs_lane_bits() {
        let mut lanes = [false; WARP_SIZE];
        lanes[0] = true;
        lanes[5] = true;
        lanes[31] = true;
        let mask = ballot(&lanes);
        assert_eq!(mask.0, (1 << 0) | (1 << 5) | (1 << 31));
        assert_eq!(mask.count(), 3);
        assert!(mask.lane(5));
        assert!(!mask.lane(6));
        assert_eq!(mask.first_set(), Some(0));
        assert_eq!(mask.last_set(), Some(31));
        assert_eq!(mask.leading_zeros(), 0);
    }

    #[test]
    fn empty_and_full_masks() {
        assert!(WarpMask::EMPTY.is_empty());
        assert_eq!(WarpMask::EMPTY.first_set(), None);
        assert_eq!(WarpMask::EMPTY.last_set(), None);
        assert_eq!(WarpMask::FULL.count(), 32);
        assert_eq!(WarpMask::FULL.contiguous_prefix_len(), 32);
        assert_eq!(WarpMask::EMPTY.contiguous_prefix_len(), 0);
    }

    #[test]
    fn contiguous_prefix_stops_at_first_gap() {
        // lanes 0,1,2 set, lane 3 clear, lane 4 set
        let mask = WarpMask(0b10111);
        assert_eq!(mask.contiguous_prefix_len(), 3);
    }

    #[test]
    fn shfl_broadcasts_one_lane() {
        let mut vals = [0u32; WARP_SIZE];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = (i as u32) * 10;
        }
        assert_eq!(shfl(&vals, 7), 70);
        assert_eq!(shfl(&vals, 0), 0);
        assert_eq!(shfl(&vals, 31), 310);
    }

    #[test]
    #[should_panic(expected = "out-of-range lane")]
    fn shfl_rejects_bad_lane() {
        let vals = [0u32; WARP_SIZE];
        let _ = shfl(&vals, 32);
    }

    #[test]
    fn shfl_up_shifts_and_keeps_low_lanes() {
        let mut vals = [0u32; WARP_SIZE];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = i as u32;
        }
        let out = shfl_up(&vals, 3);
        assert_eq!(out[0], 0);
        assert_eq!(out[2], 2);
        assert_eq!(out[3], 0);
        assert_eq!(out[31], 28);
    }

    #[test]
    fn exclusive_prefix_sum_matches_reference() {
        let mut warp = Warp::new();
        let mut vals = [0u64; WARP_SIZE];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = (i as u64 * 7 + 3) % 13;
        }
        let (prefix, total) = warp.exclusive_prefix_sum(&vals);
        let mut expect = 0u64;
        for i in 0..WARP_SIZE {
            assert_eq!(prefix[i], expect, "lane {i}");
            expect += vals[i];
        }
        assert_eq!(total, expect);
        // 5 shuffle steps were charged.
        assert_eq!(warp.counters().shuffles, 5);
    }

    #[test]
    fn linear_prefix_sum_equals_hillis_steele_reference() {
        for seed in 0u64..16 {
            let mut vals = [0u64; WARP_SIZE];
            for (i, v) in vals.iter_mut().enumerate() {
                *v = (i as u64).wrapping_mul(seed * 2654435761 + 1) % 9973;
            }
            let mut warp = Warp::new();
            let fast = warp.exclusive_prefix_sum(&vals);
            let reference = exclusive_prefix_sum_reference(&vals);
            assert_eq!(fast, reference, "seed {seed}");
        }
    }

    #[test]
    fn ballot_mask_charges_like_ballot() {
        let mut lanes = [false; WARP_SIZE];
        lanes[3] = true;
        lanes[17] = true;
        let mut a = Warp::new();
        let from_bools = a.ballot(&lanes);
        let mut b = Warp::new();
        let from_mask = b.ballot_mask(WarpMask::from_lanes(&lanes));
        assert_eq!(from_bools, from_mask);
        assert_eq!(a.counters().ballots, b.counters().ballots);
        assert_eq!(a.counters().instructions, b.counters().instructions);
    }

    #[test]
    fn branch_divergence_only_when_warp_splits() {
        let mut warp = Warp::new();
        warp.branch(WarpMask::FULL, WarpMask::FULL);
        assert_eq!(warp.counters().divergent_branches, 0);
        warp.branch(WarpMask::EMPTY, WarpMask::FULL);
        assert_eq!(warp.counters().divergent_branches, 0);
        warp.branch(WarpMask(0x0000_FFFF), WarpMask::FULL);
        assert_eq!(warp.counters().divergent_branches, 1);
        // Inactive lanes do not count: taken == active is uniform.
        warp.branch(WarpMask(0x0000_00FF), WarpMask(0x0000_00FF));
        assert_eq!(warp.counters().divergent_branches, 1);
    }

    #[test]
    fn rounds_and_memory_are_charged() {
        let mut warp = Warp::new();
        warp.begin_round(32);
        warp.begin_round(4);
        warp.global_read(128, true);
        warp.global_write(64, false);
        warp.shared_read(2);
        let c = warp.counters();
        assert_eq!(c.rounds, 2);
        assert_eq!(c.active_lane_sum, 36);
        assert_eq!(c.global_read_bytes, 128);
        assert_eq!(c.global_write_bytes, 64);
        assert_eq!(c.shared_read_bytes, 2);
    }

    proptest! {
        /// Ballot/mask round trip: reading each lane back reproduces the
        /// predicate array.
        #[test]
        fn ballot_roundtrip(bits in any::<u32>()) {
            let mut lanes = [false; WARP_SIZE];
            for (i, lane) in lanes.iter_mut().enumerate() {
                *lane = bits & (1 << i) != 0;
            }
            let mask = ballot(&lanes);
            prop_assert_eq!(mask.0, bits);
            for (i, &lane) in lanes.iter().enumerate() {
                prop_assert_eq!(mask.lane(i), lane);
            }
            prop_assert_eq!(mask.count() as usize, lanes.iter().filter(|&&b| b).count());
        }

        /// The warp prefix sum equals the sequential scan for arbitrary
        /// inputs (no overflow in the tested range).
        #[test]
        fn prefix_sum_matches_scan(vals in proptest::collection::vec(0u64..1_000_000, WARP_SIZE)) {
            let mut arr = [0u64; WARP_SIZE];
            arr.copy_from_slice(&vals);
            let mut warp = Warp::new();
            let (prefix, total) = warp.exclusive_prefix_sum(&arr);
            let mut acc = 0u64;
            for i in 0..WARP_SIZE {
                prop_assert_eq!(prefix[i], acc);
                acc += arr[i];
            }
            prop_assert_eq!(total, acc);
        }

        /// contiguous_prefix_len is the length of the maximal all-ones
        /// prefix.
        #[test]
        fn prefix_len_definition(bits in any::<u32>()) {
            let mask = WarpMask(bits);
            let len = mask.contiguous_prefix_len() as usize;
            for i in 0..len {
                prop_assert!(mask.lane(i));
            }
            if len < WARP_SIZE {
                prop_assert!(!mask.lane(len));
            }
        }
    }
}
