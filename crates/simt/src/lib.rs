//! Warp-synchronous SIMT execution model and GPU cost model.
//!
//! The Gompresso paper runs its decompressor on an NVIDIA Tesla K40: each
//! compressed data block is handled by one *warp* of 32 threads executing in
//! lock step, coordinating through the `ballot` and `shfl` warp instructions.
//! No GPU is available in this reproduction, so this crate provides the
//! substitute substrate described in `DESIGN.md`:
//!
//! * [`warp`] — deterministic warp-level primitives (`ballot`, `shfl`,
//!   shuffle-based prefix sums, leading-zero counts, lane predicates)
//!   operating on 32-lane state arrays. The decompression kernels in
//!   `gompresso-core` are written against these primitives in the same
//!   warp-synchronous style as the paper's Figure 5 pseudo-code, so
//!   round counts, divergence and utilization are directly observable.
//! * [`counters`] — instruction / memory-transaction / divergence counters
//!   accumulated while a simulated kernel runs.
//! * [`device`] — an analytical device model parameterised for the Tesla K40
//!   (SMX count, clock, DRAM bandwidth, shared-memory capacity) including
//!   the shared-memory occupancy limit that the paper identifies as the
//!   constraint on concurrent Huffman-decoding blocks.
//! * [`pcie`] — a PCI Express 3.0 x16 link model used to reproduce the
//!   host↔device transfer costs that dominate Gompresso/Byte in Figure 13.
//! * [`cost`] — converts counters plus device parameters into estimated
//!   kernel execution times and end-to-end decompression bandwidths.
//!
//! The model is intentionally simple and transparent: it is calibrated to
//! reproduce the *shape* of the paper's results (who wins, by what factor,
//! where the PCIe ceiling bites), not absolute microsecond accuracy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod counters;
pub mod device;
pub mod pcie;
pub mod warp;

pub use cost::{CostModel, KernelTime};
pub use counters::{KernelCounters, MemoryScope, WarpCounters};
pub use device::{GpuDeviceModel, OccupancyModel};
pub use pcie::{PcieGeneration, PcieLink};
pub use warp::{ballot, lane_id_iter, shfl, shfl_up, Warp, WarpMask, WARP_SIZE};
