//! Bitstream encoder for canonical codes.

use crate::{CanonicalCode, CodeEntry, HuffmanError, Result};
use gompresso_bitstream::BitWriter;

/// Encoding table: per-symbol bit-reversed codes ready for the LSB-first
/// bitstream writer.
#[derive(Debug, Clone)]
pub struct EncodeTable {
    /// `(reversed code, length)` per symbol; length 0 means "no code".
    codes: Vec<(u32, u8)>,
}

impl EncodeTable {
    /// Builds the encoding table for a canonical code.
    pub fn new(code: &CanonicalCode) -> Self {
        let codes = code.entries().iter().map(|e: &CodeEntry| (e.reversed(), e.len)).collect();
        Self { codes }
    }

    /// Appends the code word for `symbol` to the bitstream.
    ///
    /// Returns an error if the symbol has no code (zero frequency during
    /// construction) or lies outside the alphabet — both indicate a mismatch
    /// between the histogram used to build the code and the stream being
    /// encoded, which the compressor treats as an internal invariant
    /// violation surfaced as an error rather than a panic.
    pub fn encode(&self, w: &mut BitWriter, symbol: u16) -> Result<()> {
        match self.codes.get(symbol as usize) {
            Some(&(code, len)) if len > 0 => {
                w.write_bits(code, u32::from(len));
                Ok(())
            }
            _ => Err(HuffmanError::UnknownSymbol(symbol)),
        }
    }

    /// Appends the code words for a slice of literal bytes to the bitstream.
    ///
    /// This is the fused bulk path of the bit-level block encoder: the
    /// `(code, len)` pairs are read straight out of the table with no
    /// per-symbol `Result` plumbing and no per-symbol bounds check (the
    /// byte-valued symbols index a fixed 256-entry prefix of the table).
    /// Encountering an uncoded byte still fails with
    /// [`HuffmanError::UnknownSymbol`] exactly like [`Self::encode`]; the
    /// writer contents are unspecified after an error, which callers treat
    /// as fatal anyway.
    pub fn encode_slice(&self, w: &mut BitWriter, bytes: &[u8]) -> Result<()> {
        match self.codes.get(..256) {
            Some(codes) => {
                // Pack code words into a local 64-bit group and hand the
                // writer one bulk append per ~50+ bits instead of one call
                // per symbol. The group is flushed *before* a code that
                // would not fit, so any legal code length (canonical codes
                // allow up to 32 bits; the writer takes at most 62) is
                // packed without shifting bits past the accumulator.
                let mut group = 0u64;
                let mut group_bits = 0u32;
                for &b in bytes {
                    let (code, len) = codes[usize::from(b)];
                    if len == 0 {
                        return Err(HuffmanError::UnknownSymbol(u16::from(b)));
                    }
                    let len = u32::from(len);
                    if group_bits + len > 62 {
                        w.write_bits_u64(group, group_bits);
                        group = 0;
                        group_bits = 0;
                    }
                    group |= u64::from(code) << group_bits;
                    group_bits += len;
                }
                w.write_bits_u64(group, group_bits);
                Ok(())
            }
            // Alphabets smaller than a byte (not produced by the token
            // model, but legal for this table type) take the checked path.
            None => bytes.iter().try_for_each(|&b| self.encode(w, u16::from(b))),
        }
    }

    /// Appends the code words for a slice of literal bytes, consuming two
    /// bytes per table hit where the pair table has a fused entry.
    ///
    /// Bit-identical to [`Self::encode_slice`]; the pair table only changes
    /// how many accumulator visits the same bit sequence costs. Pairs whose
    /// combined code length exceeds the fusion cap (and the odd tail byte)
    /// fall back to the single-symbol path, so rare long codes keep
    /// working. `pairs` must have been built from this table —
    /// [`PairTable::rebuild`] per block, after the block's code is final.
    pub fn encode_slice_paired(&self, w: &mut BitWriter, bytes: &[u8], pairs: &PairTable) -> Result<()> {
        let codes = match self.codes.get(..256) {
            Some(codes) => codes,
            None => return self.encode_slice(w, bytes),
        };
        let mut group = 0u64;
        let mut group_bits = 0u32;
        let mut chunks = bytes.chunks_exact(2);
        for pair in &mut chunks {
            let idx = usize::from(pair[0]) << 8 | usize::from(pair[1]);
            let len = u32::from(pairs.lens[idx]);
            if len != 0 {
                if group_bits + len > 62 {
                    w.write_bits_u64(group, group_bits);
                    group = 0;
                    group_bits = 0;
                }
                group |= u64::from(pairs.codes[idx]) << group_bits;
                group_bits += len;
                continue;
            }
            // No fused entry: either a byte is uncoded (error, as in
            // encode_slice) or the combined length exceeds 32 bits.
            for &b in pair {
                let (code, len) = codes[usize::from(b)];
                if len == 0 {
                    return Err(HuffmanError::UnknownSymbol(u16::from(b)));
                }
                let len = u32::from(len);
                if group_bits + len > 62 {
                    w.write_bits_u64(group, group_bits);
                    group = 0;
                    group_bits = 0;
                }
                group |= u64::from(code) << group_bits;
                group_bits += len;
            }
        }
        if let [b] = chunks.remainder() {
            let (code, len) = codes[usize::from(*b)];
            if len == 0 {
                return Err(HuffmanError::UnknownSymbol(u16::from(*b)));
            }
            let len = u32::from(len);
            if group_bits + len > 62 {
                w.write_bits_u64(group, group_bits);
                group = 0;
                group_bits = 0;
            }
            group |= u64::from(code) << group_bits;
            group_bits += len;
        }
        w.write_bits_u64(group, group_bits);
        Ok(())
    }

    /// The raw `(bit-reversed code, length)` table prefix for byte-valued
    /// symbols, or `None` for sub-byte alphabets.
    ///
    /// For bulk emitters that pack several code words into a local
    /// accumulator before touching the bitstream writer (the block
    /// encoder's per-sequence group packing). Length 0 marks an uncoded
    /// byte — callers must treat it as [`HuffmanError::UnknownSymbol`],
    /// exactly like [`Self::encode_slice`] does.
    pub fn literal_codes(&self) -> Option<&[(u32, u8)]> {
        self.codes.get(..256)
    }

    /// The `(bit-reversed code, length)` pair for `symbol`, for callers
    /// that fuse several fields into one bulk bitstream append.
    pub fn code(&self, symbol: u16) -> Result<(u32, u8)> {
        match self.codes.get(symbol as usize) {
            Some(&(code, len)) if len > 0 => Ok((code, len)),
            _ => Err(HuffmanError::UnknownSymbol(symbol)),
        }
    }

    /// Length in bits of the code word for `symbol`, or `None` if uncoded.
    pub fn code_len(&self, symbol: u16) -> Option<u8> {
        match self.codes.get(symbol as usize) {
            Some(&(_, len)) if len > 0 => Some(len),
            _ => None,
        }
    }

    /// Total encoded size in bits of a symbol slice (without encoding it).
    pub fn encoded_bits(&self, symbols: &[u16]) -> Result<u64> {
        let mut bits = 0u64;
        for &s in symbols {
            bits += u64::from(self.code_len(s).ok_or(HuffmanError::UnknownSymbol(s))?);
        }
        Ok(bits)
    }

    /// Total encoded size in bits of every symbol occurrence counted by
    /// `hist` (without encoding anything).
    ///
    /// This is the exact size hint the block encoder uses to preallocate
    /// its output bitstream: the histogram that built the code already
    /// knows how often each symbol will be written. Symbols with zero
    /// frequency are ignored; a nonzero count for an uncoded symbol is the
    /// usual histogram/stream mismatch error.
    pub fn encoded_bits_for_histogram(&self, hist: &crate::Histogram) -> Result<u64> {
        let mut bits = 0u64;
        for (sym, &count) in hist.counts().iter().enumerate() {
            if count == 0 {
                continue;
            }
            let len = self.code_len(sym as u16).ok_or(HuffmanError::UnknownSymbol(sym as u16))?;
            bits += count * u64::from(len);
        }
        Ok(bits)
    }
}

/// Multi-symbol (paired-literal) encode table.
///
/// For every ordered pair of literal bytes whose code words jointly fit in
/// 32 bits, the table stores the pre-fused bit pattern
/// `code(b0) | code(b1) << len(b0)` and the combined length, so
/// [`EncodeTable::encode_slice_paired`] emits two symbols per table hit and
/// accumulator visit. Length 0 marks pairs with no fused entry (a byte is
/// uncoded, or the pair is too long to fuse) — the encoder falls back to
/// single symbols there.
///
/// Building the table touches all 65 536 pairs, so it only pays off on
/// blocks with enough literal bytes to amortize; callers gate on that (see
/// the block encoder) and reuse one table's allocation across blocks via
/// [`PairTable::rebuild`].
#[derive(Debug, Clone, Default)]
pub struct PairTable {
    /// Fused `code(b0) | code(b1) << len(b0)` per pair index `b0 << 8 | b1`.
    codes: Vec<u32>,
    /// Combined code length per pair index; 0 = no fused entry.
    lens: Vec<u8>,
}

impl PairTable {
    /// Creates an empty, unbuilt table (no allocation until `rebuild`).
    pub fn new() -> Self {
        Self::default()
    }

    /// The fused `(bits, combined length)` entry for the byte pair
    /// `(b0, b1)`; length 0 means "no fused entry" (fall back to single
    /// symbols). Returns the sentinel for an unbuilt table.
    #[inline]
    pub fn entry(&self, b0: u8, b1: u8) -> (u32, u8) {
        let idx = usize::from(b0) << 8 | usize::from(b1);
        match (self.codes.get(idx), self.lens.get(idx)) {
            (Some(&code), Some(&len)) => (code, len),
            _ => (0, 0),
        }
    }

    /// (Re)builds the fused entries for `table`, reusing the allocation.
    pub fn rebuild(&mut self, table: &EncodeTable) {
        self.codes.clear();
        self.codes.resize(1 << 16, 0);
        self.lens.clear();
        self.lens.resize(1 << 16, 0);
        let singles = match table.codes.get(..256) {
            Some(codes) => codes,
            None => return, // sub-byte alphabet: leave unbuilt, callers fall back
        };
        for (b0, &(code0, len0)) in singles.iter().enumerate() {
            if len0 == 0 {
                continue;
            }
            let row_codes = &mut self.codes[b0 << 8..(b0 + 1) << 8];
            let row_lens = &mut self.lens[b0 << 8..(b0 + 1) << 8];
            // `len0` is loop-invariant here, so the row fill is a straight
            // shift/or sweep the compiler can vectorize.
            let shift = u32::from(len0);
            for b1 in 0..256usize {
                let (code1, len1) = singles[b1];
                let total = u32::from(len0) + u32::from(len1);
                if len1 == 0 || total > 32 {
                    continue;
                }
                row_codes[b1] = code0 | code1 << shift;
                row_lens[b1] = total as u8;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DecodeTable, Histogram};
    use gompresso_bitstream::BitReader;

    fn code_for(counts: &[u64], max_len: u8) -> CanonicalCode {
        let mut h = Histogram::new(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            h.add_n(i as u16, c);
        }
        CanonicalCode::from_histogram(&h, max_len).unwrap()
    }

    #[test]
    fn encode_then_decode_matches() {
        let code = code_for(&[50, 20, 20, 5, 5], 10);
        let enc = EncodeTable::new(&code);
        let dec = DecodeTable::new(&code).unwrap();
        let symbols = [0u16, 1, 0, 2, 3, 4, 0, 0, 1, 2];
        let mut w = BitWriter::new();
        for &s in &symbols {
            enc.encode(&mut w, s).unwrap();
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn encode_slice_handles_codes_longer_than_16_bits() {
        // A Kraft-complete set of lengths 1,2,…,24,24 over a 256-entry
        // alphabet: codes up to 24 bits are legal for this table type, and
        // the group packer must flush *before* a code that would not fit
        // its 64-bit accumulator (the old fixed 46-bit flush rule silently
        // shifted long codes past bit 63). The packed path must agree
        // bit-for-bit with the per-symbol reference path.
        let mut lengths = vec![0u8; 256];
        for (i, len) in lengths.iter_mut().take(24).enumerate() {
            *len = (i + 1) as u8;
        }
        lengths[24] = 24;
        let code = CanonicalCode::from_lengths(&lengths, 24).unwrap();
        let enc = EncodeTable::new(&code);
        assert_eq!(enc.code_len(23), Some(24));

        let bytes: Vec<u8> = (0..200u16).map(|i| ([24u16, 23, 0, 22, 24, 1][i as usize % 6]) as u8).collect();
        let mut packed = BitWriter::new();
        enc.encode_slice(&mut packed, &bytes).unwrap();
        let mut reference = BitWriter::new();
        for &b in &bytes {
            enc.encode(&mut reference, u16::from(b)).unwrap();
        }
        assert_eq!(packed.finish(), reference.finish());
    }

    #[test]
    fn paired_encode_is_bit_identical_to_single_encode() {
        // Skewed byte distribution over the full alphabet.
        let mut h = Histogram::new(257);
        for b in 0u16..256 {
            h.add_n(b, 1 + (b as u64 % 17) * (b as u64 % 3 + 1));
        }
        h.add_n(0, 5000);
        h.add_n(101, 2000);
        let code = CanonicalCode::from_histogram(&h, 12).unwrap();
        let enc = EncodeTable::new(&code);
        let mut pairs = PairTable::new();
        pairs.rebuild(&enc);

        let mut state = 0xDEAD_BEEFu32;
        for len in [0usize, 1, 2, 3, 7, 256, 1001] {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    (state >> 17) as u8
                })
                .collect();
            let mut single = BitWriter::new();
            enc.encode_slice(&mut single, &bytes).unwrap();
            let mut paired = BitWriter::new();
            enc.encode_slice_paired(&mut paired, &bytes, &pairs).unwrap();
            assert_eq!(paired.bit_len(), single.bit_len(), "len {len}");
            assert_eq!(paired.finish(), single.finish(), "len {len}");
        }
    }

    #[test]
    fn paired_encode_falls_back_on_unfusable_pairs() {
        // Kraft-complete lengths 1,2,…,24,24: pairs of the 24-bit codes
        // exceed the 32-bit fusion cap and must take the fallback path.
        let mut lengths = vec![0u8; 256];
        for (i, len) in lengths.iter_mut().take(24).enumerate() {
            *len = (i + 1) as u8;
        }
        lengths[24] = 24;
        let code = CanonicalCode::from_lengths(&lengths, 24).unwrap();
        let enc = EncodeTable::new(&code);
        let mut pairs = PairTable::new();
        pairs.rebuild(&enc);
        let bytes: Vec<u8> = (0..201u16).map(|i| ([24u16, 23, 0, 22, 24, 1][i as usize % 6]) as u8).collect();
        let mut single = BitWriter::new();
        enc.encode_slice(&mut single, &bytes).unwrap();
        let mut paired = BitWriter::new();
        enc.encode_slice_paired(&mut paired, &bytes, &pairs).unwrap();
        assert_eq!(paired.finish(), single.finish());
        // Uncoded bytes still error.
        let mut w = BitWriter::new();
        assert!(matches!(
            enc.encode_slice_paired(&mut w, &[24, 25], &pairs),
            Err(HuffmanError::UnknownSymbol(25))
        ));
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let code = code_for(&[1000, 10, 10, 10], 10);
        let enc = EncodeTable::new(&code);
        assert!(enc.code_len(0).unwrap() <= enc.code_len(1).unwrap());
        assert!(enc.code_len(0).unwrap() <= enc.code_len(3).unwrap());
    }

    #[test]
    fn unknown_and_uncoded_symbols_error() {
        let code = code_for(&[10, 0, 10], 10);
        let enc = EncodeTable::new(&code);
        let mut w = BitWriter::new();
        assert!(matches!(enc.encode(&mut w, 1), Err(HuffmanError::UnknownSymbol(1))));
        assert!(matches!(enc.encode(&mut w, 9), Err(HuffmanError::UnknownSymbol(9))));
        assert_eq!(enc.code_len(1), None);
        assert_eq!(enc.code_len(9), None);
    }

    #[test]
    fn encoded_bits_matches_actual_encoding() {
        let code = code_for(&[60, 25, 10, 5], 10);
        let enc = EncodeTable::new(&code);
        let symbols = [0u16, 0, 1, 2, 3, 1, 0];
        let predicted = enc.encoded_bits(&symbols).unwrap();
        let mut w = BitWriter::new();
        for &s in &symbols {
            enc.encode(&mut w, s).unwrap();
        }
        assert_eq!(w.bit_len(), predicted);
        assert!(enc.encoded_bits(&[99]).is_err());
    }

    #[test]
    fn average_length_is_within_one_bit_of_entropy() {
        // Huffman optimality sanity check on a skewed distribution.
        let counts = [500u64, 250, 125, 60, 30, 20, 10, 5];
        let mut h = Histogram::new(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            h.add_n(i as u16, c);
        }
        let code = CanonicalCode::from_histogram(&h, 15).unwrap();
        let enc = EncodeTable::new(&code);
        let total: u64 = counts.iter().sum();
        let weighted: u64 =
            counts.iter().enumerate().map(|(i, &c)| c * u64::from(enc.code_len(i as u16).unwrap())).sum();
        let avg = weighted as f64 / total as f64;
        let entropy = h.entropy_bits();
        assert!(avg >= entropy - 1e-9, "avg {avg} below entropy {entropy}");
        assert!(avg < entropy + 1.0, "avg {avg} more than 1 bit above entropy {entropy}");
    }
}
