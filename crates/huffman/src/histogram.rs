//! Symbol frequency histograms.
//!
//! Gompresso builds its two Huffman trees per data block from the token
//! frequencies of that block (paper, Section III-A). The histogram is the
//! bridge between the LZ77 token stream and the code construction.

/// Frequency counts over a dense `u16` symbol alphabet `0..alphabet_size`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an all-zero histogram over `alphabet_size` symbols.
    pub fn new(alphabet_size: usize) -> Self {
        Self { counts: vec![0; alphabet_size] }
    }

    /// Builds a histogram directly from a slice of symbols.
    pub fn from_symbols(alphabet_size: usize, symbols: &[u16]) -> Self {
        let mut h = Self::new(alphabet_size);
        for &s in symbols {
            h.add(s);
        }
        h
    }

    /// Number of symbols in the alphabet (including zero-frequency ones).
    pub fn alphabet_size(&self) -> usize {
        self.counts.len()
    }

    /// Resets every count to zero, keeping the alphabet and its allocation.
    ///
    /// The block encoder reuses one histogram pair per worker thread across
    /// all blocks of a file; this is the per-block reset.
    pub fn clear(&mut self) {
        self.counts.fill(0);
    }

    /// Increments the count of `symbol` by one.
    ///
    /// Panics if `symbol` is outside the alphabet; the token model guarantees
    /// this cannot happen for well-formed token streams.
    pub fn add(&mut self, symbol: u16) {
        self.counts[symbol as usize] += 1;
    }

    /// Increments the count of `symbol` by `n`.
    pub fn add_n(&mut self, symbol: u16, n: u64) {
        self.counts[symbol as usize] += n;
    }

    /// Counts every byte of `bytes` as a symbol occurrence.
    ///
    /// Equivalent to calling [`Self::add`] per byte; the bulk path indexes a
    /// fixed 256-entry prefix of the count table so the inner loop carries
    /// no bounds check. Panics if the alphabet is smaller than 256 symbols.
    pub fn add_bytes(&mut self, bytes: &[u8]) {
        let counts = &mut self.counts[..256];
        for &b in bytes {
            counts[usize::from(b)] += 1;
        }
    }

    /// Counts every byte of `bytes` through four striped `u16` lane
    /// counters, merging the lanes into the main counts once per chunk.
    ///
    /// Equivalent to [`Self::add_bytes`]. The flat build has a loop-carried
    /// dependency whenever the same byte value repeats back-to-back (the
    /// increment must forward through the store buffer); striping
    /// consecutive bytes across four independent counter arrays breaks that
    /// chain for runs shorter than four. Chunking keeps each `u16` lane
    /// counter below overflow: a lane sees at most `chunk/4 ≤ 65 535`
    /// increments of one value per merge. Panics if the alphabet is smaller
    /// than 256 symbols, like the flat build.
    pub fn add_bytes_striped(&mut self, bytes: &[u8], lanes: &mut StripeCounters) {
        // 4 * 0xFFFF: the largest chunk where one lane cannot overflow u16.
        const CHUNK: usize = 4 * 0xFFFF;
        let counts = &mut self.counts[..256];
        for chunk in bytes.chunks(CHUNK) {
            lanes.counts.fill(0);
            let (l01, l23) = lanes.counts.split_at_mut(512);
            let (l0, l1) = l01.split_at_mut(256);
            let (l2, l3) = l23.split_at_mut(256);
            let mut quads = chunk.chunks_exact(4);
            for quad in &mut quads {
                l0[usize::from(quad[0])] += 1;
                l1[usize::from(quad[1])] += 1;
                l2[usize::from(quad[2])] += 1;
                l3[usize::from(quad[3])] += 1;
            }
            for &b in quads.remainder() {
                counts[usize::from(b)] += 1;
            }
            for i in 0..256 {
                counts[i] += u64::from(l0[i]) + u64::from(l1[i]) + u64::from(l2[i]) + u64::from(l3[i]);
            }
        }
    }

    /// Frequency of `symbol`.
    pub fn count(&self, symbol: u16) -> u64 {
        self.counts[symbol as usize]
    }

    /// The raw frequency slice.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded symbol occurrences.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of symbols with nonzero frequency.
    pub fn distinct(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Merges another histogram over the same alphabet into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "histogram alphabet mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Shannon entropy of the empirical distribution in bits per symbol.
    ///
    /// Used in tests and benches as the lower bound that a valid Huffman
    /// code's average length must stay within one bit of.
    pub fn entropy_bits(&self) -> f64 {
        let total = self.total() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let mut h = 0.0;
        for &c in &self.counts {
            if c > 0 {
                let p = c as f64 / total;
                h -= p * p.log2();
            }
        }
        h
    }
}

/// Reusable lane counters for [`Histogram::add_bytes_striped`]: four 256-way
/// `u16` arrays, one per input-byte stripe.
///
/// The block encoder keeps one per worker (inside its encode scratch) so the
/// two-level histogram build allocates nothing in steady state.
#[derive(Debug, Clone)]
pub struct StripeCounters {
    counts: Vec<u16>,
}

impl StripeCounters {
    /// Creates zeroed lane counters.
    pub fn new() -> Self {
        Self { counts: vec![0; 4 * 256] }
    }
}

impl Default for StripeCounters {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_totals() {
        let mut h = Histogram::new(8);
        h.add(0);
        h.add(0);
        h.add(3);
        h.add_n(7, 5);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.count(7), 5);
        assert_eq!(h.count(1), 0);
        assert_eq!(h.total(), 8);
        assert_eq!(h.distinct(), 3);
        assert_eq!(h.alphabet_size(), 8);
    }

    #[test]
    fn from_symbols_matches_manual_counting() {
        let syms = [1u16, 1, 2, 5, 5, 5];
        let h = Histogram::from_symbols(6, &syms);
        assert_eq!(h.counts(), &[0, 2, 1, 0, 0, 3]);
    }

    #[test]
    fn striped_build_matches_flat_build() {
        let mut lanes = StripeCounters::new();
        let mut state = 0x1234_5678u32;
        // Lengths straddle the quad remainder and (via the big case) more
        // than one merge chunk.
        for len in [0usize, 1, 2, 3, 4, 5, 255, 4096, 4 * 0xFFFF + 9] {
            let bytes: Vec<u8> = (0..len)
                .map(|i| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    // Long same-byte runs exercise the dependency the lanes
                    // exist to break.
                    if i % 97 < 13 {
                        7
                    } else {
                        (state >> 21) as u8
                    }
                })
                .collect();
            let mut flat = Histogram::new(257);
            flat.add_bytes(&bytes);
            let mut striped = Histogram::new(257);
            striped.add_bytes_striped(&bytes, &mut lanes);
            assert_eq!(flat, striped, "len {len}");
        }
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::from_symbols(4, &[0, 1, 1]);
        let b = Histogram::from_symbols(4, &[1, 2, 3, 3]);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 3, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "alphabet mismatch")]
    fn merge_rejects_mismatched_alphabets() {
        let mut a = Histogram::new(4);
        let b = Histogram::new(5);
        a.merge(&b);
    }

    #[test]
    fn entropy_of_uniform_and_degenerate() {
        // Uniform over 4 symbols → 2 bits.
        let h = Histogram::from_symbols(4, &[0, 1, 2, 3]);
        assert!((h.entropy_bits() - 2.0).abs() < 1e-12);
        // Single symbol → 0 bits.
        let h = Histogram::from_symbols(4, &[2, 2, 2]);
        assert_eq!(h.entropy_bits(), 0.0);
        // Empty → 0 bits.
        assert_eq!(Histogram::new(4).entropy_bits(), 0.0);
    }
}
