//! Canonical, length-limited Huffman coding for Gompresso/Bit.
//!
//! DEFLATE — and Gompresso/Bit, which follows it — entropy-codes the LZ77
//! token stream with Huffman codes. Two trees are used per data block: one
//! for literals and match lengths, one for match offsets. The paper adds two
//! twists that this crate implements:
//!
//! * **Length-limited codes** — the decoder uses a flat look-up table with
//!   `2^CWL` entries per tree held in the GPU's on-chip shared memory, so
//!   the maximum codeword length is capped (CWL = 10 in the paper) even if
//!   the optimal Huffman code would be longer. Limiting uses the
//!   package-merge algorithm, which produces the optimal code subject to the
//!   length cap.
//! * **Canonical representation** — only the code *lengths* are stored in
//!   the file (Section III-A / Fig. 3); both encoder and decoder rebuild the
//!   same codes from the lengths.
//!
//! The decoder here is the same single-lookup design the paper describes:
//! peek `CWL` bits, index the LUT, consume the indicated length — no tree
//! walking, no data-dependent branching.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod decoder;
pub mod encoder;
pub mod error;
pub mod histogram;
pub mod lengths;

pub use canonical::{CanonicalCode, CodeEntry};
pub use decoder::DecodeTable;
pub use encoder::{EncodeTable, PairTable};
pub use error::HuffmanError;
pub use histogram::{Histogram, StripeCounters};
pub use lengths::{code_lengths, limited_code_lengths};

/// Result alias for Huffman operations.
pub type Result<T> = std::result::Result<T, HuffmanError>;

/// Default maximum codeword length used by Gompresso/Bit (10 bits, chosen in
/// the paper so two decode LUTs fit comfortably in GPU shared memory).
pub const DEFAULT_MAX_CODE_LEN: u8 = 10;

#[cfg(test)]
mod proptests {
    use super::*;
    use gompresso_bitstream::{BitReader, BitWriter};
    use proptest::prelude::*;

    proptest! {
        /// encode→decode round-trips for arbitrary symbol streams and
        /// alphabet sizes under the default length limit.
        #[test]
        fn encode_decode_roundtrip(
            symbols in proptest::collection::vec(0u16..200, 1..2000),
            max_len in 8u8..=15u8,
        ) {
            let alphabet = 200usize;
            let mut hist = Histogram::new(alphabet);
            for &s in &symbols {
                hist.add(s);
            }
            let code = CanonicalCode::from_histogram(&hist, max_len).unwrap();
            let enc = EncodeTable::new(&code);
            let dec = DecodeTable::new(&code).unwrap();

            let mut w = BitWriter::new();
            for &s in &symbols {
                enc.encode(&mut w, s).unwrap();
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &s in &symbols {
                prop_assert_eq!(dec.decode(&mut r).unwrap(), s);
            }
        }

        /// Kraft inequality holds for every generated code (validity), and
        /// no code length exceeds the limit.
        #[test]
        fn kraft_and_limit_hold(
            freqs in proptest::collection::vec(0u64..10_000, 2..300),
            max_len in 5u8..=16u8,
        ) {
            // Need at least two nonzero symbols for a meaningful code; make
            // sure of it.
            let mut freqs = freqs;
            if freqs.iter().filter(|&&f| f > 0).count() < 2 {
                freqs[0] = 1;
                let last = freqs.len() - 1;
                freqs[last] = 1;
            }
            // Skip degenerate cases where the alphabet cannot fit the limit.
            prop_assume!((freqs.len() as u64) <= (1u64 << max_len));
            let lengths = limited_code_lengths(&freqs, max_len).unwrap();
            let mut kraft = 0.0f64;
            for (&f, &l) in freqs.iter().zip(&lengths) {
                if f > 0 {
                    prop_assert!(l >= 1 && l <= max_len);
                    kraft += (2.0f64).powi(-(i32::from(l)));
                } else {
                    prop_assert_eq!(l, 0);
                }
            }
            prop_assert!(kraft <= 1.0 + 1e-9, "Kraft sum {kraft} > 1");
        }
    }
}
