//! Error type for Huffman construction and decoding.

use gompresso_bitstream::StreamError;
use std::fmt;

/// Errors surfaced by the Huffman coder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HuffmanError {
    /// The frequency table contains no symbols with nonzero frequency.
    EmptyAlphabet,
    /// The alphabet is larger than `2^max_len`, so no prefix code of the
    /// requested maximum length can cover it.
    AlphabetTooLarge {
        /// Number of symbols that need codes.
        symbols: usize,
        /// The requested maximum code length.
        max_len: u8,
    },
    /// The requested maximum codeword length is outside 1..=32.
    InvalidMaxLength(u8),
    /// A serialized code-length table is not a valid prefix code (its Kraft
    /// sum exceeds 1) or contains a length above the declared maximum.
    InvalidCodeLengths {
        /// Description of the specific violation.
        reason: &'static str,
    },
    /// A symbol outside the code's alphabet was passed to the encoder.
    UnknownSymbol(u16),
    /// The bitstream ended in the middle of a codeword or contained a bit
    /// pattern that is not a valid codeword prefix.
    Decode(StreamError),
    /// A decoded bit pattern does not correspond to any codeword.
    InvalidCodeword {
        /// The offending `max_len`-bit window.
        bits: u32,
    },
}

impl fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HuffmanError::EmptyAlphabet => write!(f, "cannot build a Huffman code over an empty alphabet"),
            HuffmanError::AlphabetTooLarge { symbols, max_len } => write!(
                f,
                "{symbols} symbols cannot be coded with a maximum codeword length of {max_len} bits"
            ),
            HuffmanError::InvalidMaxLength(l) => write!(f, "invalid maximum codeword length {l}"),
            HuffmanError::InvalidCodeLengths { reason } => write!(f, "invalid code length table: {reason}"),
            HuffmanError::UnknownSymbol(s) => write!(f, "symbol {s} is not part of the code's alphabet"),
            HuffmanError::Decode(e) => write!(f, "bitstream error during Huffman decode: {e}"),
            HuffmanError::InvalidCodeword { bits } => {
                write!(f, "bit pattern {bits:#x} is not a valid codeword")
            }
        }
    }
}

impl std::error::Error for HuffmanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HuffmanError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StreamError> for HuffmanError {
    fn from(e: StreamError) -> Self {
        HuffmanError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_values() {
        assert!(HuffmanError::AlphabetTooLarge { symbols: 2000, max_len: 10 }.to_string().contains("2000"));
        assert!(HuffmanError::UnknownSymbol(300).to_string().contains("300"));
        assert!(HuffmanError::InvalidCodeword { bits: 0x3FF }.to_string().contains("0x3ff"));
    }

    #[test]
    fn stream_errors_convert() {
        let e: HuffmanError = StreamError::VarintOverflow.into();
        assert!(matches!(e, HuffmanError::Decode(_)));
    }
}
