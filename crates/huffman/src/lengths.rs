//! Code-length assignment: optimal Huffman and length-limited
//! (package-merge) variants.
//!
//! Gompresso/Bit limits codeword lengths to `CWL` bits (10 in the paper) so
//! that the flat decode tables fit in GPU shared memory. The package-merge
//! algorithm produces the *optimal* prefix code subject to that limit, which
//! keeps the compression-ratio penalty of limiting at the few-percent level
//! the paper reports (~9 % end-to-end versus zlib).

use crate::{HuffmanError, Result};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes unrestricted Huffman code lengths for the given frequencies.
///
/// Symbols with zero frequency receive length 0 (no code). If only one
/// symbol has nonzero frequency it receives length 1 (a prefix code needs at
/// least one bit per symbol to be decodable).
pub fn code_lengths(freqs: &[u64]) -> Result<Vec<u8>> {
    let nonzero: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
    if nonzero.is_empty() {
        return Err(HuffmanError::EmptyAlphabet);
    }
    let mut lengths = vec![0u8; freqs.len()];
    if nonzero.len() == 1 {
        lengths[nonzero[0]] = 1;
        return Ok(lengths);
    }

    // Standard heap-based Huffman tree construction over internal nodes.
    // `nodes[i]` stores (parent index or usize::MAX). Leaves occupy
    // 0..nonzero.len(), internal nodes follow.
    let n = nonzero.len();
    let mut parent = vec![usize::MAX; 2 * n - 1];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(n);
    for (leaf_idx, &sym) in nonzero.iter().enumerate() {
        heap.push(Reverse((freqs[sym], leaf_idx)));
    }
    let mut next_node = n;
    while heap.len() > 1 {
        let Reverse((w1, n1)) = heap.pop().expect("heap has >1 element");
        let Reverse((w2, n2)) = heap.pop().expect("heap has >1 element");
        parent[n1] = next_node;
        parent[n2] = next_node;
        heap.push(Reverse((w1 + w2, next_node)));
        next_node += 1;
    }

    // Depth of each leaf = number of parent hops to the root.
    for (leaf_idx, &sym) in nonzero.iter().enumerate() {
        let mut depth = 0u32;
        let mut node = leaf_idx;
        while parent[node] != usize::MAX {
            node = parent[node];
            depth += 1;
        }
        lengths[sym] = depth.min(255) as u8;
    }
    Ok(lengths)
}

/// Computes optimal code lengths subject to `max_len` using package-merge.
///
/// Zero-frequency symbols receive length 0. Errors if the alphabet is empty,
/// if `max_len` is 0 or greater than 32, or if more than `2^max_len` symbols
/// need codes (no prefix code of that length can exist).
pub fn limited_code_lengths(freqs: &[u64], max_len: u8) -> Result<Vec<u8>> {
    if max_len == 0 || max_len > 32 {
        return Err(HuffmanError::InvalidMaxLength(max_len));
    }
    let nonzero: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
    if nonzero.is_empty() {
        return Err(HuffmanError::EmptyAlphabet);
    }
    let n = nonzero.len();
    if (n as u64) > 1u64 << max_len.min(63) {
        return Err(HuffmanError::AlphabetTooLarge { symbols: n, max_len });
    }
    let mut lengths = vec![0u8; freqs.len()];
    if n == 1 {
        lengths[nonzero[0]] = 1;
        return Ok(lengths);
    }

    // Fast path: if the unrestricted Huffman code already satisfies the
    // limit it is optimal, so use it as-is.
    let unrestricted = code_lengths(freqs)?;
    if unrestricted.iter().all(|&l| l <= max_len) {
        return Ok(unrestricted);
    }

    // Package-merge. Each list element carries the set of original leaves it
    // contains; a leaf's final code length is the number of selected
    // elements that contain it.
    #[derive(Clone)]
    struct Item {
        weight: u64,
        leaves: Vec<u32>,
    }

    let mut leaves: Vec<Item> =
        nonzero.iter().map(|&sym| Item { weight: freqs[sym], leaves: vec![sym as u32] }).collect();
    leaves.sort_by_key(|it| it.weight);

    // `current` is the list for the level being processed, starting at the
    // deepest level (max_len) which contains only the original leaves.
    let mut current: Vec<Item> = leaves.clone();
    for _level in 1..max_len {
        // Package adjacent pairs.
        let mut packages: Vec<Item> = Vec::with_capacity(current.len() / 2);
        let mut iter = current.chunks_exact(2);
        for pair in &mut iter {
            let mut merged = pair[0].leaves.clone();
            merged.extend_from_slice(&pair[1].leaves);
            packages.push(Item { weight: pair[0].weight + pair[1].weight, leaves: merged });
        }
        // Merge packages with a fresh copy of the leaves, keeping the list
        // sorted by weight (stable: leaves first on ties, which matches the
        // canonical construction used downstream).
        let mut next: Vec<Item> = Vec::with_capacity(leaves.len() + packages.len());
        let (mut li, mut pi) = (0usize, 0usize);
        while li < leaves.len() || pi < packages.len() {
            let take_leaf = match (leaves.get(li), packages.get(pi)) {
                (Some(l), Some(p)) => l.weight <= p.weight,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            if take_leaf {
                next.push(leaves[li].clone());
                li += 1;
            } else {
                next.push(packages[pi].clone());
                pi += 1;
            }
        }
        current = next;
    }

    // Select the first 2n - 2 elements of the final (level-1) list; each
    // containment of a leaf adds one bit to that leaf's code length.
    let select = 2 * n - 2;
    let mut depth = vec![0u32; freqs.len()];
    for item in current.iter().take(select) {
        for &sym in &item.leaves {
            depth[sym as usize] += 1;
        }
    }
    for &sym in &nonzero {
        debug_assert!(depth[sym] >= 1 && depth[sym] <= u32::from(max_len));
        lengths[sym] = depth[sym] as u8;
    }
    Ok(lengths)
}

/// Checks that a code-length table is a valid prefix code: every nonzero
/// length is at most `max_len` and the Kraft sum does not exceed 1.
pub fn validate_code_lengths(lengths: &[u8], max_len: u8) -> Result<()> {
    let mut kraft = 0u64; // in units of 2^-max_len
    let unit = 1u64 << max_len;
    let mut any = false;
    for &l in lengths {
        if l == 0 {
            continue;
        }
        any = true;
        if l > max_len {
            return Err(HuffmanError::InvalidCodeLengths { reason: "code length exceeds declared maximum" });
        }
        kraft += unit >> l;
        if kraft > unit {
            return Err(HuffmanError::InvalidCodeLengths {
                reason: "Kraft sum exceeds 1 (over-subscribed code)",
            });
        }
    }
    if !any {
        return Err(HuffmanError::EmptyAlphabet);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_length(freqs: &[u64], lengths: &[u8]) -> u64 {
        freqs.iter().zip(lengths).map(|(&f, &l)| f * u64::from(l)).sum()
    }

    #[test]
    fn empty_alphabet_is_rejected() {
        assert!(matches!(code_lengths(&[0, 0, 0]), Err(HuffmanError::EmptyAlphabet)));
        assert!(matches!(limited_code_lengths(&[0, 0], 8), Err(HuffmanError::EmptyAlphabet)));
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let lengths = code_lengths(&[0, 42, 0]).unwrap();
        assert_eq!(lengths, vec![0, 1, 0]);
        let lengths = limited_code_lengths(&[0, 42, 0], 10).unwrap();
        assert_eq!(lengths, vec![0, 1, 0]);
    }

    #[test]
    fn two_symbols_get_one_bit_each() {
        let lengths = code_lengths(&[10, 90]).unwrap();
        assert_eq!(lengths, vec![1, 1]);
    }

    #[test]
    fn classic_example_matches_known_optimum() {
        // Frequencies 5, 9, 12, 13, 16, 45 — the textbook example; expected
        // lengths 4, 4, 3, 3, 3, 1 (total weighted length 224).
        let freqs = [5u64, 9, 12, 13, 16, 45];
        let lengths = code_lengths(&freqs).unwrap();
        assert_eq!(weighted_length(&freqs, &lengths), 224);
        assert_eq!(lengths[5], 1);
    }

    #[test]
    fn skewed_distribution_exceeds_limit_and_gets_clamped() {
        // Fibonacci-like frequencies force a deep Huffman tree.
        let freqs = [1u64, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377];
        let unrestricted = code_lengths(&freqs).unwrap();
        assert!(unrestricted.iter().copied().max().unwrap() > 6);
        let limited = limited_code_lengths(&freqs, 6).unwrap();
        assert!(limited.iter().copied().max().unwrap() <= 6);
        validate_code_lengths(&limited, 6).unwrap();
        // The limited code cannot be shorter than the optimum...
        assert!(weighted_length(&freqs, &limited) >= weighted_length(&freqs, &unrestricted));
        // ...but must still beat a fixed-length (4-bit) code for this skew.
        assert!(weighted_length(&freqs, &limited) < 4 * freqs.iter().sum::<u64>());
    }

    #[test]
    fn limited_equals_unrestricted_when_limit_is_loose() {
        let freqs = [7u64, 7, 7, 7, 9, 11, 13];
        let a = code_lengths(&freqs).unwrap();
        let b = limited_code_lengths(&freqs, 15).unwrap();
        assert_eq!(weighted_length(&freqs, &a), weighted_length(&freqs, &b));
    }

    #[test]
    fn package_merge_is_optimal_for_small_case() {
        // For max_len = 3 and 5 equal-ish symbols the optimal solution is
        // known: lengths {2,2,2,3,3} or a permutation with the same weighted
        // total.
        let freqs = [10u64, 10, 10, 9, 9];
        let limited = limited_code_lengths(&freqs, 3).unwrap();
        validate_code_lengths(&limited, 3).unwrap();
        let total = weighted_length(&freqs, &limited);
        // {2,2,2,3,3} → 3 symbols × freq 10 × 2 bits + 2 symbols × freq 9 × 3 bits = 114.
        assert_eq!(total, 114);
    }

    #[test]
    fn alphabet_too_large_for_limit() {
        let freqs = vec![1u64; 40];
        assert!(matches!(
            limited_code_lengths(&freqs, 5),
            Err(HuffmanError::AlphabetTooLarge { symbols: 40, max_len: 5 })
        ));
        // 32 symbols fit exactly into 5 bits.
        let freqs = vec![1u64; 32];
        let lengths = limited_code_lengths(&freqs, 5).unwrap();
        assert!(lengths.iter().all(|&l| l == 5));
    }

    #[test]
    fn invalid_max_len_is_rejected() {
        assert!(matches!(limited_code_lengths(&[1, 1], 0), Err(HuffmanError::InvalidMaxLength(0))));
        assert!(matches!(limited_code_lengths(&[1, 1], 33), Err(HuffmanError::InvalidMaxLength(33))));
    }

    #[test]
    fn validation_catches_oversubscription() {
        // Three codes of length 1 cannot coexist.
        assert!(validate_code_lengths(&[1, 1, 1], 10).is_err());
        // Lengths above the maximum are rejected.
        assert!(validate_code_lengths(&[11, 1], 10).is_err());
        // A valid table passes.
        validate_code_lengths(&[1, 2, 2], 10).unwrap();
        // All-zero tables are rejected.
        assert!(validate_code_lengths(&[0, 0], 10).is_err());
    }

    #[test]
    fn zero_frequency_symbols_get_no_code() {
        let freqs = [0u64, 5, 0, 7, 0];
        let lengths = limited_code_lengths(&freqs, 10).unwrap();
        assert_eq!(lengths[0], 0);
        assert_eq!(lengths[2], 0);
        assert_eq!(lengths[4], 0);
        assert!(lengths[1] > 0 && lengths[3] > 0);
    }
}
