//! Canonical code assignment and the on-disk code-length representation.
//!
//! A *canonical* Huffman code is fully determined by the code length of each
//! symbol: symbols are ordered by (length, symbol id) and codes are assigned
//! in counting order. Gompresso stores only the lengths in each block header
//! ("the Huffman trees are written in a canonical representation", paper
//! Section III-A); both sides rebuild identical codes from them.

use crate::lengths::{limited_code_lengths, validate_code_lengths};
use crate::{Histogram, HuffmanError, Result};
use gompresso_bitstream::{read_varint, write_varint, ByteReader, ByteWriter};

/// One symbol's code: the canonical (MSB-first) code value and its length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CodeEntry {
    /// Canonical code value, MSB-first, occupying the low `len` bits.
    pub code: u32,
    /// Code length in bits; 0 means the symbol has no code.
    pub len: u8,
}

impl CodeEntry {
    /// The code value with its bits reversed within `len` bits — the form
    /// written to the LSB-first bitstream and indexed by the decode LUT.
    pub fn reversed(&self) -> u32 {
        reverse_bits(self.code, self.len)
    }
}

/// Reverses the low `len` bits of `value`.
pub(crate) fn reverse_bits(value: u32, len: u8) -> u32 {
    if len == 0 {
        return 0;
    }
    value.reverse_bits() >> (32 - u32::from(len))
}

/// A complete canonical, length-limited prefix code over a dense alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalCode {
    entries: Vec<CodeEntry>,
    max_len: u8,
}

impl CanonicalCode {
    /// Builds the optimal length-limited canonical code for a histogram.
    pub fn from_histogram(hist: &Histogram, max_len: u8) -> Result<Self> {
        let lengths = limited_code_lengths(hist.counts(), max_len)?;
        Self::from_lengths(&lengths, max_len)
    }

    /// Rebuilds a canonical code from a code-length table (the decoder-side
    /// entry point). Validates that the lengths form a usable prefix code.
    pub fn from_lengths(lengths: &[u8], max_len: u8) -> Result<Self> {
        if max_len == 0 || max_len > 32 {
            return Err(HuffmanError::InvalidMaxLength(max_len));
        }
        validate_code_lengths(lengths, max_len)?;

        // Count codes of each length, then derive the first code of each
        // length (standard DEFLATE / canonical construction).
        let mut bl_count = vec![0u32; usize::from(max_len) + 1];
        for &l in lengths {
            if l > 0 {
                bl_count[usize::from(l)] += 1;
            }
        }
        let mut next_code = vec![0u32; usize::from(max_len) + 2];
        let mut code = 0u32;
        for bits in 1..=usize::from(max_len) {
            code = (code + bl_count[bits - 1]) << 1;
            next_code[bits] = code;
        }

        let mut entries = vec![CodeEntry::default(); lengths.len()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                entries[sym] = CodeEntry { code: next_code[usize::from(l)], len: l };
                next_code[usize::from(l)] += 1;
            }
        }
        Ok(Self { entries, max_len })
    }

    /// Number of symbols in the alphabet (including uncoded ones).
    pub fn alphabet_size(&self) -> usize {
        self.entries.len()
    }

    /// Maximum codeword length this code was constructed for.
    pub fn max_len(&self) -> u8 {
        self.max_len
    }

    /// Longest code length actually used.
    pub fn longest_used(&self) -> u8 {
        self.entries.iter().map(|e| e.len).max().unwrap_or(0)
    }

    /// Per-symbol code entries.
    pub fn entries(&self) -> &[CodeEntry] {
        &self.entries
    }

    /// The entry for one symbol.
    pub fn entry(&self, symbol: u16) -> Option<CodeEntry> {
        self.entries.get(symbol as usize).copied()
    }

    /// Code lengths for every symbol (the canonical representation).
    pub fn lengths(&self) -> Vec<u8> {
        self.entries.iter().map(|e| e.len).collect()
    }

    /// Serializes the code as its length table: alphabet size, then a
    /// zero-run-length-compressed list of lengths. Runs of zero lengths are
    /// common (most byte values never occur in a block), so this keeps the
    /// per-block header small — the paper's Figure 12 relies on header
    /// overhead being negligible even at 32 KB blocks.
    pub fn serialize(&self, w: &mut ByteWriter) {
        write_varint(w, self.alphabet_size() as u64);
        w.write_u8(self.max_len);
        let lengths = self.lengths();
        let mut i = 0usize;
        while i < lengths.len() {
            if lengths[i] == 0 {
                let mut run = 1usize;
                while i + run < lengths.len() && lengths[i + run] == 0 {
                    run += 1;
                }
                w.write_u8(0);
                write_varint(w, run as u64);
                i += run;
            } else {
                w.write_u8(lengths[i]);
                i += 1;
            }
        }
    }

    /// Deserializes a code previously written by [`Self::serialize`].
    pub fn deserialize(r: &mut ByteReader<'_>) -> Result<Self> {
        let alphabet = read_varint(r)? as usize;
        if alphabet == 0 || alphabet > u16::MAX as usize + 1 {
            return Err(HuffmanError::InvalidCodeLengths { reason: "alphabet size out of range" });
        }
        let max_len = r.read_u8()?;
        let mut lengths = Vec::with_capacity(alphabet);
        while lengths.len() < alphabet {
            let l = r.read_u8()?;
            if l == 0 {
                let run = read_varint(r)? as usize;
                if run == 0 || lengths.len() + run > alphabet {
                    return Err(HuffmanError::InvalidCodeLengths { reason: "zero-run exceeds alphabet" });
                }
                lengths.resize(lengths.len() + run, 0);
            } else {
                lengths.push(l);
            }
        }
        Self::from_lengths(&lengths, max_len)
    }

    /// Advances `r` past one serialized code without building it.
    ///
    /// Used by cheap header validation passes (e.g. checking a block's
    /// declared uncompressed size before allocating output buffers) that
    /// need the fields *behind* the code tables but must not pay for code
    /// construction — or allocate anything — on untrusted input.
    pub fn skip_serialized(r: &mut ByteReader<'_>) -> Result<()> {
        let alphabet = read_varint(r)? as usize;
        if alphabet == 0 || alphabet > u16::MAX as usize + 1 {
            return Err(HuffmanError::InvalidCodeLengths { reason: "alphabet size out of range" });
        }
        let _max_len = r.read_u8()?;
        let mut seen = 0usize;
        while seen < alphabet {
            let l = r.read_u8()?;
            if l == 0 {
                let run = read_varint(r)? as usize;
                if run == 0 || seen + run > alphabet {
                    return Err(HuffmanError::InvalidCodeLengths { reason: "zero-run exceeds alphabet" });
                }
                seen += run;
            } else {
                seen += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_from(counts: &[u64]) -> Histogram {
        let mut h = Histogram::new(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            h.add_n(i as u16, c);
        }
        h
    }

    #[test]
    fn reverse_bits_basics() {
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0b10, 2), 0b01);
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(0, 0), 0);
        assert_eq!(reverse_bits(0x3FF, 10), 0x3FF);
    }

    #[test]
    fn canonical_codes_are_ordered_and_prefix_free() {
        let hist = hist_from(&[45, 13, 12, 16, 9, 5]);
        let code = CanonicalCode::from_histogram(&hist, 10).unwrap();
        let entries = code.entries();
        // Shorter codes must have numerically smaller values when left
        // aligned; check prefix-freeness exhaustively.
        for (i, a) in entries.iter().enumerate() {
            for (j, b) in entries.iter().enumerate() {
                if i == j || a.len == 0 || b.len == 0 {
                    continue;
                }
                let (short, long) = if a.len <= b.len { (a, b) } else { (b, a) };
                let prefix = long.code >> (long.len - short.len);
                assert!(
                    !(prefix == short.code && (a.len != b.len || a.code != b.code)),
                    "code {i} and {j} are not prefix-free"
                );
            }
        }
    }

    #[test]
    fn canonical_assignment_is_deterministic_in_symbol_order() {
        // Equal frequencies: canonical order must break ties by symbol id.
        let hist = hist_from(&[10, 10, 10, 10]);
        let code = CanonicalCode::from_histogram(&hist, 4).unwrap();
        let e = code.entries();
        assert!(e[0].code < e[1].code);
        assert!(e[1].code < e[2].code);
        assert!(e[2].code < e[3].code);
        assert!(e.iter().all(|c| c.len == 2));
    }

    #[test]
    fn from_lengths_matches_deflate_example() {
        // RFC 1951 section 3.2.2 example: lengths (3,3,3,3,3,2,4,4) yield
        // codes 010,011,100,101,110,00,1110,1111.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let code = CanonicalCode::from_lengths(&lengths, 4).unwrap();
        let codes: Vec<u32> = code.entries().iter().map(|e| e.code).collect();
        assert_eq!(codes, vec![0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111]);
    }

    #[test]
    fn serialize_roundtrip_preserves_code() {
        let mut counts = vec![0u64; 300];
        counts[7] = 100;
        counts[42] = 50;
        counts[255] = 10;
        counts[299] = 1;
        let code = CanonicalCode::from_histogram(&hist_from(&counts), 10).unwrap();
        let mut w = ByteWriter::new();
        code.serialize(&mut w);
        let bytes = w.finish();
        // The zero-run compression should make this much smaller than 300.
        assert!(bytes.len() < 40, "serialized {} bytes", bytes.len());
        let mut r = ByteReader::new(&bytes);
        let back = CanonicalCode::deserialize(&mut r).unwrap();
        assert_eq!(back, code);
        // Skipping must consume exactly the serialized span.
        let mut r = ByteReader::new(&bytes);
        CanonicalCode::skip_serialized(&mut r).unwrap();
        assert!(r.is_empty());
        // And reject the same truncations deserialize rejects.
        for cut in [0usize, 1, bytes.len() / 2] {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(CanonicalCode::skip_serialized(&mut r).is_err(), "cut {cut}");
        }
        assert!(r.is_empty());
    }

    #[test]
    fn deserialize_rejects_garbage() {
        // Truncated input.
        let mut r = ByteReader::new(&[5]);
        assert!(CanonicalCode::deserialize(&mut r).is_err());
        // Zero-run overruns the alphabet.
        let mut w = ByteWriter::new();
        write_varint(&mut w, 4);
        w.write_u8(10); // max_len
        w.write_u8(0);
        write_varint(&mut w, 100);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert!(CanonicalCode::deserialize(&mut r).is_err());
        // Oversubscribed lengths are rejected by validation.
        let mut w = ByteWriter::new();
        write_varint(&mut w, 3);
        w.write_u8(10);
        w.write_u8(1);
        w.write_u8(1);
        w.write_u8(1);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert!(CanonicalCode::deserialize(&mut r).is_err());
    }

    #[test]
    fn longest_used_respects_limit() {
        let mut counts = vec![0u64; 40];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = 1 << (i % 20);
        }
        let code = CanonicalCode::from_histogram(&hist_from(&counts), 10).unwrap();
        assert!(code.longest_used() <= 10);
        assert_eq!(code.max_len(), 10);
    }

    #[test]
    fn entry_lookup_and_bounds() {
        let code = CanonicalCode::from_histogram(&hist_from(&[5, 5]), 4).unwrap();
        assert!(code.entry(0).is_some());
        assert!(code.entry(1).is_some());
        assert!(code.entry(2).is_none());
        assert_eq!(code.alphabet_size(), 2);
    }
}
