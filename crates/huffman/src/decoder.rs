//! Table-driven (single-lookup) decoder.
//!
//! This is the decoder design the paper uses on the GPU: a flat table with
//! `2^CWL` entries indexed by the next `CWL` bits of the stream. One lookup
//! yields the symbol and the true code length to consume — no tree walk, no
//! data-dependent branching, which keeps the 32 lanes of a warp from
//! diverging while they decode different sub-blocks (Section III-B-1).

use crate::{CanonicalCode, HuffmanError, Result};
use gompresso_bitstream::BitReader;

/// A flat decode look-up table for one canonical code.
#[derive(Debug, Clone)]
pub struct DecodeTable {
    /// `entries[bits]` = (symbol, code length); length 0 marks an invalid
    /// codeword prefix (possible when the code does not exhaust the Kraft
    /// budget).
    entries: Vec<(u16, u8)>,
    /// Index width in bits (the code's maximum codeword length).
    index_bits: u8,
}

impl DecodeTable {
    /// Builds the LUT for a canonical code.
    pub fn new(code: &CanonicalCode) -> Result<Self> {
        let index_bits = code.max_len();
        if index_bits == 0 || index_bits > 24 {
            return Err(HuffmanError::InvalidMaxLength(index_bits));
        }
        let size = 1usize << index_bits;
        let mut entries = vec![(0u16, 0u8); size];
        for (sym, entry) in code.entries().iter().enumerate() {
            if entry.len == 0 {
                continue;
            }
            // The bitstream is LSB-first, so the decoder peeks `index_bits`
            // bits whose low `entry.len` bits are the reversed codeword; all
            // possible values of the remaining high bits map to this symbol.
            let rev = entry.reversed();
            let step = 1usize << entry.len;
            let mut idx = rev as usize;
            while idx < size {
                entries[idx] = (sym as u16, entry.len);
                idx += step;
            }
        }
        Ok(Self { entries, index_bits })
    }

    /// Number of bits used to index the table (CWL).
    pub fn index_bits(&self) -> u8 {
        self.index_bits
    }

    /// Size of the table in entries (`2^CWL`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Shared-memory footprint of this table in bytes if it were resident on
    /// the GPU (4 bytes per entry — see the occupancy model).
    pub fn simulated_shared_bytes(&self) -> u32 {
        (self.entries.len() * 4) as u32
    }

    /// Decodes one symbol from the bitstream.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16> {
        let window = r.peek_bits(u32::from(self.index_bits))?;
        let (symbol, len) = self.entries[window as usize];
        if len == 0 {
            return Err(HuffmanError::InvalidCodeword { bits: window });
        }
        r.consume_bits(u32::from(len))?;
        Ok(symbol)
    }

    /// Decodes one symbol and reports the number of bits consumed.
    pub fn decode_with_len(&self, r: &mut BitReader<'_>) -> Result<(u16, u8)> {
        let window = r.peek_bits(u32::from(self.index_bits))?;
        let (symbol, len) = self.entries[window as usize];
        if len == 0 {
            return Err(HuffmanError::InvalidCodeword { bits: window });
        }
        r.consume_bits(u32::from(len))?;
        Ok((symbol, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EncodeTable, Histogram};
    use gompresso_bitstream::BitWriter;

    fn code_for(counts: &[u64], max_len: u8) -> CanonicalCode {
        let mut h = Histogram::new(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            h.add_n(i as u16, c);
        }
        CanonicalCode::from_histogram(&h, max_len).unwrap()
    }

    #[test]
    fn lut_size_matches_cwl() {
        let code = code_for(&[3, 3, 2, 1], 10);
        let dec = DecodeTable::new(&code).unwrap();
        assert_eq!(dec.len(), 1024);
        assert_eq!(dec.index_bits(), 10);
        assert_eq!(dec.simulated_shared_bytes(), 4096);
        assert!(!dec.is_empty());
    }

    #[test]
    fn decode_handles_final_short_codeword() {
        // A stream whose last codeword does not fill the peek window: the
        // reader zero-fills, and the LUT must still resolve it.
        let code = code_for(&[10, 1], 10);
        let enc = EncodeTable::new(&code);
        let dec = DecodeTable::new(&code).unwrap();
        let mut w = BitWriter::new();
        enc.encode(&mut w, 1).unwrap();
        enc.encode(&mut w, 0).unwrap();
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap(), 1);
        assert_eq!(dec.decode(&mut r).unwrap(), 0);
    }

    #[test]
    fn decode_with_len_reports_consumed_bits() {
        let code = code_for(&[100, 10, 5, 1], 10);
        let enc = EncodeTable::new(&code);
        let dec = DecodeTable::new(&code).unwrap();
        let mut w = BitWriter::new();
        enc.encode(&mut w, 3).unwrap();
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let (sym, len) = dec.decode_with_len(&mut r).unwrap();
        assert_eq!(sym, 3);
        assert_eq!(len, enc.code_len(3).unwrap());
    }

    #[test]
    fn invalid_prefix_is_detected_when_code_is_incomplete() {
        // Single-symbol code: only codeword "0"; a stream starting with "1"
        // hits an unassigned LUT slot.
        let code = code_for(&[5], 4);
        let dec = DecodeTable::new(&code).unwrap();
        let bytes = [0b0000_0001u8];
        let mut r = BitReader::new(&bytes);
        assert!(matches!(dec.decode(&mut r), Err(HuffmanError::InvalidCodeword { .. })));
    }

    #[test]
    fn empty_stream_yields_error_not_panic() {
        let code = code_for(&[5, 5], 10);
        let dec = DecodeTable::new(&code).unwrap();
        let mut r = BitReader::new(&[]);
        // Peek of an empty stream returns 0 zero-filled, which decodes to a
        // symbol but then fails to consume — either way an error must
        // surface, never a panic.
        assert!(dec.decode(&mut r).is_err());
    }

    #[test]
    fn long_stream_roundtrip_with_many_symbols() {
        let mut counts = vec![0u64; 300];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = (i as u64 % 17) + 1;
        }
        let code = code_for(&counts, 12);
        let enc = EncodeTable::new(&code);
        let dec = DecodeTable::new(&code).unwrap();
        let symbols: Vec<u16> = (0..5000u32).map(|i| ((i * 7919) % 300) as u16).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            enc.encode(&mut w, s).unwrap();
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn oversized_index_is_rejected() {
        // max_len of 25 would require a 32M-entry LUT; the constructor
        // refuses, mirroring the shared-memory constraint on the GPU.
        let lengths = vec![1u8, 1];
        let code = CanonicalCode::from_lengths(&lengths, 25).unwrap();
        assert!(matches!(DecodeTable::new(&code), Err(HuffmanError::InvalidMaxLength(25))));
    }
}
