//! Table-driven (single-lookup) decoder.
//!
//! This is the decoder design the paper uses on the GPU: a flat table with
//! `2^CWL` entries indexed by the next `CWL` bits of the stream. One lookup
//! yields the symbol and the true code length to consume — no tree walk, no
//! data-dependent branching, which keeps the 32 lanes of a warp from
//! diverging while they decode different sub-blocks (Section III-B-1).

use crate::{CanonicalCode, HuffmanError, Result};
use gompresso_bitstream::{BitReader, StreamError};

/// A flat decode look-up table for one canonical code.
///
/// Entries are packed as `symbol << 8 | code_len` in a boxed `u32` slice, so
/// each LUT slot occupies exactly the 4 bytes the GPU occupancy model charges
/// for it ([`Self::simulated_shared_bytes`]) — half the cache footprint of
/// the former `(u16, u8)` tuple layout, which padded to 8 bytes per entry.
#[derive(Debug, Clone)]
pub struct DecodeTable {
    /// `entries[bits]` = `symbol << 8 | len`; length 0 marks an invalid
    /// codeword prefix (possible when the code does not exhaust the Kraft
    /// budget).
    entries: Box<[u32]>,
    /// Index width in bits (the code's maximum codeword length).
    index_bits: u8,
}

impl DecodeTable {
    /// Builds the LUT for a canonical code.
    pub fn new(code: &CanonicalCode) -> Result<Self> {
        let index_bits = code.max_len();
        if index_bits == 0 || index_bits > 24 {
            return Err(HuffmanError::InvalidMaxLength(index_bits));
        }
        let size = 1usize << index_bits;
        let mut entries = vec![0u32; size].into_boxed_slice();
        for (sym, entry) in code.entries().iter().enumerate() {
            if entry.len == 0 {
                continue;
            }
            // The bitstream is LSB-first, so the decoder peeks `index_bits`
            // bits whose low `entry.len` bits are the reversed codeword; all
            // possible values of the remaining high bits map to this symbol.
            let rev = entry.reversed();
            let step = 1usize << entry.len;
            let packed = (sym as u32) << 8 | u32::from(entry.len);
            let mut idx = rev as usize;
            while idx < size {
                entries[idx] = packed;
                idx += step;
            }
        }
        Ok(Self { entries, index_bits })
    }

    /// Number of bits used to index the table (CWL).
    pub fn index_bits(&self) -> u8 {
        self.index_bits
    }

    /// Size of the table in entries (`2^CWL`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Shared-memory footprint of this table in bytes if it were resident on
    /// the GPU (4 bytes per entry — since the packed-`u32` layout, also the
    /// host table's actual footprint).
    pub fn simulated_shared_bytes(&self) -> u32 {
        (self.entries.len() * 4) as u32
    }

    /// Raw table lookup: `(symbol, code length)` for a `CWL`-bit window.
    ///
    /// Length 0 marks a window that is not a valid codeword prefix. Exposed
    /// so reference decoders (tests, microbenchmarks) can reproduce the
    /// unfused peek/lookup/consume sequence against the fused
    /// [`Self::decode`] path.
    ///
    /// # Panics
    ///
    /// Panics if `window >= 2^index_bits` — callers must mask their peek to
    /// [`Self::index_bits`] bits, as `BitReader::peek_bits` does.
    #[inline]
    pub fn lookup(&self, window: u32) -> (u16, u8) {
        let e = self.entries[window as usize];
        ((e >> 8) as u16, (e & 0xFF) as u8)
    }

    /// Raw table lookup in the packed representation: `symbol << 8 | len`.
    ///
    /// This is the hot-path form — one 4-byte load, no tuple re-packing; the
    /// microbenchmarks compare it against a tuple-layout table.
    ///
    /// # Panics
    ///
    /// Panics if `window >= 2^index_bits`, like [`Self::lookup`].
    #[inline]
    pub fn lookup_packed(&self, window: u32) -> u32 {
        self.entries[window as usize]
    }

    /// Decodes one symbol from the bitstream.
    ///
    /// Fused hot path: one accumulator refill, one table lookup, one
    /// unchecked consume — instead of the peek/consume pair with its two
    /// width validations. An exhausted stream reports
    /// [`StreamError::UnexpectedEof`] directly (also when the zero-filled
    /// window happens to hit an unassigned table slot), and a stream that
    /// ends in the middle of a codeword reports the precise shortfall.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16> {
        Ok(self.decode_with_len(r)?.0)
    }

    /// Decodes one symbol and reports the number of bits consumed.
    #[inline]
    pub fn decode_with_len(&self, r: &mut BitReader<'_>) -> Result<(u16, u8)> {
        let (window, available) = r.peek_window(u32::from(self.index_bits));
        let entry = self.entries[window as usize];
        let (symbol, len) = ((entry >> 8) as u16, (entry & 0xFF) as u8);
        if len == 0 {
            // Canonical codes always assign the all-zeros codeword to their
            // first symbol, so the zero-filled window of an exhausted stream
            // hits an assigned slot and EOF surfaces through the width check
            // below; this arm is defense in depth for tables whose zero slot
            // could ever be unassigned.
            return Err(if available == 0 {
                StreamError::UnexpectedEof { needed: 1, remaining: 0 }.into()
            } else {
                HuffmanError::InvalidCodeword { bits: window }
            });
        }
        let width = u32::from(len);
        if width > available {
            // Truncated mid-codeword: `peek_window` already refilled, so a
            // shortfall means the stream is exhausted. Report the byte
            // shortfall like the checked consume would.
            return Err(StreamError::UnexpectedEof {
                needed: ((width - available) as usize).div_ceil(8),
                remaining: (r.remaining_bits() / 8) as usize,
            }
            .into());
        }
        r.consume_peeked(width);
        Ok((symbol, len))
    }

    /// Decodes one symbol entirely from the reader's cached bits.
    ///
    /// The caller must have verified `r.cached_bits() >= self.index_bits()`
    /// (checked by a debug assertion): under that invariant the window is
    /// backed by real stream bits, so the decoded length can neither exceed
    /// availability nor mask EOF — no refill, no width bookkeeping, just the
    /// packed lookup and an invalid-prefix check. This is the shared inner
    /// step of every batched/interleaved fast path; keeping it in one place
    /// keeps their error behaviour identical.
    #[inline]
    pub fn decode_cached(&self, r: &mut BitReader<'_>) -> Result<u16> {
        debug_assert!(r.cached_bits() >= u32::from(self.index_bits));
        let window = r.peek_cached(u32::from(self.index_bits));
        let entry = self.entries[window as usize];
        let len = entry & 0xFF;
        if len == 0 {
            return Err(HuffmanError::InvalidCodeword { bits: window });
        }
        r.consume_peeked(len);
        Ok((entry >> 8) as u16)
    }

    /// Decodes a run of symbols below `boundary`, appending each (as a byte)
    /// to `sink`, and returns the first symbol `>= boundary` together with
    /// the number of bytes appended.
    ///
    /// This is the batched form of [`Self::decode`] for byte-valued runs
    /// (literal strings in the token grammar, where `boundary` is the
    /// end-of-sequences symbol): while the reader's accumulator holds at
    /// least one full `CWL`-bit window of real stream bits, symbols are
    /// decoded with no EOF bookkeeping at all — one cached peek, one packed
    /// lookup, one unchecked consume per symbol — and the refill plus EOF
    /// accounting are amortized over the whole group. Within `CWL` bits of
    /// the stream tail it falls back to the per-symbol checked path, so
    /// truncation errors are reported exactly as [`Self::decode`] would.
    #[inline]
    pub fn decode_run(&self, r: &mut BitReader<'_>, boundary: u16, sink: &mut Vec<u8>) -> Result<(u16, u32)> {
        let width = u32::from(self.index_bits);
        let mut count = 0u32;
        loop {
            // Fast group: every window is backed by real stream bits, so
            // per-symbol EOF bookkeeping drops out (see `decode_cached`).
            while r.cached_bits() >= width {
                let symbol = self.decode_cached(r)?;
                if symbol >= boundary {
                    return Ok((symbol, count));
                }
                sink.push(symbol as u8);
                count += 1;
            }
            r.refill();
            if r.cached_bits() >= width {
                continue;
            }
            // Tail: fewer bits than a full window remain; the checked path
            // zero-fills the window and reports truncation precisely.
            let (symbol, _) = self.decode_with_len(r)?;
            if symbol >= boundary {
                return Ok((symbol, count));
            }
            sink.push(symbol as u8);
            count += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EncodeTable, Histogram};
    use gompresso_bitstream::BitWriter;

    fn code_for(counts: &[u64], max_len: u8) -> CanonicalCode {
        let mut h = Histogram::new(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            h.add_n(i as u16, c);
        }
        CanonicalCode::from_histogram(&h, max_len).unwrap()
    }

    #[test]
    fn lut_size_matches_cwl() {
        let code = code_for(&[3, 3, 2, 1], 10);
        let dec = DecodeTable::new(&code).unwrap();
        assert_eq!(dec.len(), 1024);
        assert_eq!(dec.index_bits(), 10);
        assert_eq!(dec.simulated_shared_bytes(), 4096);
        assert!(!dec.is_empty());
    }

    #[test]
    fn decode_handles_final_short_codeword() {
        // A stream whose last codeword does not fill the peek window: the
        // reader zero-fills, and the LUT must still resolve it.
        let code = code_for(&[10, 1], 10);
        let enc = EncodeTable::new(&code);
        let dec = DecodeTable::new(&code).unwrap();
        let mut w = BitWriter::new();
        enc.encode(&mut w, 1).unwrap();
        enc.encode(&mut w, 0).unwrap();
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap(), 1);
        assert_eq!(dec.decode(&mut r).unwrap(), 0);
    }

    #[test]
    fn decode_with_len_reports_consumed_bits() {
        let code = code_for(&[100, 10, 5, 1], 10);
        let enc = EncodeTable::new(&code);
        let dec = DecodeTable::new(&code).unwrap();
        let mut w = BitWriter::new();
        enc.encode(&mut w, 3).unwrap();
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let (sym, len) = dec.decode_with_len(&mut r).unwrap();
        assert_eq!(sym, 3);
        assert_eq!(len, enc.code_len(3).unwrap());
    }

    #[test]
    fn invalid_prefix_is_detected_when_code_is_incomplete() {
        // Single-symbol code: only codeword "0"; a stream starting with "1"
        // hits an unassigned LUT slot.
        let code = code_for(&[5], 4);
        let dec = DecodeTable::new(&code).unwrap();
        let bytes = [0b0000_0001u8];
        let mut r = BitReader::new(&bytes);
        assert!(matches!(dec.decode(&mut r), Err(HuffmanError::InvalidCodeword { .. })));
    }

    #[test]
    fn empty_stream_yields_unexpected_eof_directly() {
        let code = code_for(&[5, 5], 10);
        let dec = DecodeTable::new(&code).unwrap();
        let mut r = BitReader::new(&[]);
        assert!(matches!(dec.decode(&mut r), Err(HuffmanError::Decode(StreamError::UnexpectedEof { .. }))));
    }

    #[test]
    fn zero_window_is_always_assigned_so_eof_takes_the_width_path() {
        // Canonical construction gives the first symbol the all-zeros
        // codeword, so LUT slot 0 is assigned for every buildable table and
        // an exhausted stream reports EOF via the width-vs-available check
        // (not the unassigned-slot defense branch). Pin both facts.
        for lengths in [&[2u8, 2, 2][..], &[1, 7, 7, 6, 5, 4, 3][..], &[4, 4, 4][..]] {
            let code = CanonicalCode::from_lengths(lengths, 10).unwrap();
            let dec = DecodeTable::new(&code).unwrap();
            let (zero_sym, zero_len) = dec.lookup(0);
            assert_eq!(zero_sym, 0, "first symbol owns the zero codeword");
            assert!(zero_len > 0, "slot 0 must be assigned");
            let mut r = BitReader::new(&[]);
            assert!(matches!(
                dec.decode(&mut r),
                Err(HuffmanError::Decode(StreamError::UnexpectedEof { .. }))
            ));
        }
    }

    #[test]
    fn truncated_mid_codeword_is_unexpected_eof() {
        // Symbol 1 has an explicit 7-bit codeword. Write it twice (14 bits)
        // and keep only the first byte: the second codeword is cut after one
        // bit, and the decoder must report EOF (with the byte shortfall),
        // not InvalidCodeword.
        let code = CanonicalCode::from_lengths(&[1u8, 7, 7, 6, 5, 4, 3], 10).unwrap();
        let enc = EncodeTable::new(&code);
        let dec = DecodeTable::new(&code).unwrap();
        assert_eq!(enc.code_len(1).unwrap(), 7);
        let mut w = BitWriter::new();
        enc.encode(&mut w, 1).unwrap();
        enc.encode(&mut w, 1).unwrap();
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let truncated = &bytes[..1];
        let mut r = BitReader::new(truncated);
        assert_eq!(dec.decode(&mut r).unwrap(), 1);
        match dec.decode(&mut r) {
            Err(HuffmanError::Decode(StreamError::UnexpectedEof { needed, .. })) => {
                assert!(needed >= 1);
            }
            other => panic!("expected UnexpectedEof on truncated codeword, got {other:?}"),
        }
    }

    #[test]
    fn fused_decode_matches_unfused_lookup_walk() {
        // The fused decode must consume exactly the same bits as a manual
        // peek/lookup/consume walk over the same stream.
        let mut counts = vec![0u64; 64];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = (i as u64 % 11) + 1;
        }
        let code = code_for(&counts, 11);
        let enc = EncodeTable::new(&code);
        let dec = DecodeTable::new(&code).unwrap();
        let symbols: Vec<u16> = (0..2000u32).map(|i| ((i * 131) % 64) as u16).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            enc.encode(&mut w, s).unwrap();
        }
        let bytes = w.finish();
        let mut fused = BitReader::new(&bytes);
        let mut manual = BitReader::new(&bytes);
        for &expected in &symbols {
            let got = dec.decode(&mut fused).unwrap();
            let window = manual.peek_bits(u32::from(dec.index_bits())).unwrap();
            let (sym, len) = dec.lookup(window);
            manual.consume_bits(u32::from(len)).unwrap();
            assert_eq!(got, expected);
            assert_eq!(sym, expected);
            assert_eq!(fused.bit_position(), manual.bit_position());
        }
    }

    #[test]
    fn long_stream_roundtrip_with_many_symbols() {
        let mut counts = vec![0u64; 300];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = (i as u64 % 17) + 1;
        }
        let code = code_for(&counts, 12);
        let enc = EncodeTable::new(&code);
        let dec = DecodeTable::new(&code).unwrap();
        let symbols: Vec<u16> = (0..5000u32).map(|i| ((i * 7919) % 300) as u16).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            enc.encode(&mut w, s).unwrap();
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn packed_lookup_agrees_with_tuple_lookup() {
        let code = code_for(&[40, 20, 10, 5, 2, 1], 11);
        let dec = DecodeTable::new(&code).unwrap();
        for window in 0..dec.len() as u32 {
            let (sym, len) = dec.lookup(window);
            let packed = dec.lookup_packed(window);
            assert_eq!(packed, u32::from(sym) << 8 | u32::from(len));
        }
    }

    #[test]
    fn decode_run_matches_per_symbol_decode() {
        // Byte-valued symbols 0..200 with a couple of "boundary" symbols
        // above, mimicking the literal/EOS split of the token grammar.
        let mut counts = vec![0u64; 204];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = (i as u64 % 13) + 1;
        }
        let code = code_for(&counts, 12);
        let enc = EncodeTable::new(&code);
        let dec = DecodeTable::new(&code).unwrap();
        let boundary = 200u16;
        // Interleave literal runs of varying lengths with boundary symbols,
        // including empty runs (two boundary symbols back to back).
        let mut symbols: Vec<u16> = Vec::new();
        for i in 0..600u32 {
            for j in 0..(i % 7) {
                symbols.push(((i * 31 + j * 7) % 200) as u16);
            }
            symbols.push(boundary + (i % 4) as u16);
        }
        let mut w = BitWriter::new();
        for &s in &symbols {
            enc.encode(&mut w, s).unwrap();
        }
        let bytes = w.finish();

        let mut batched = BitReader::new(&bytes);
        let mut serial = BitReader::new(&bytes);
        let mut run = Vec::new();
        let mut expect = Vec::new();
        loop {
            run.clear();
            expect.clear();
            let batch = dec.decode_run(&mut batched, boundary, &mut run);
            let serial_stop = loop {
                match dec.decode(&mut serial) {
                    Ok(sym) if sym < boundary => expect.push(sym as u8),
                    other => break other,
                }
            };
            match (batch, serial_stop) {
                (Ok((sym, count)), Ok(stop)) => {
                    assert_eq!(sym, stop);
                    assert_eq!(count as usize, run.len());
                    assert_eq!(run, expect);
                    assert_eq!(batched.bit_position(), serial.bit_position());
                }
                (Err(_), Err(_)) => break,
                (b, s) => panic!("batched {b:?} disagrees with serial {s:?}"),
            }
        }
    }

    #[test]
    fn decode_run_reports_tail_truncation_like_decode() {
        // Cut the stream mid-codeword: the batched path must surface the
        // same UnexpectedEof the per-symbol path reports.
        let code = CanonicalCode::from_lengths(&[1u8, 7, 7, 6, 5, 4, 3], 10).unwrap();
        let enc = EncodeTable::new(&code);
        let dec = DecodeTable::new(&code).unwrap();
        let mut w = BitWriter::new();
        for _ in 0..40 {
            enc.encode(&mut w, 1).unwrap();
        }
        let bytes = w.finish();
        let truncated = &bytes[..bytes.len() - 1];
        let mut r = BitReader::new(truncated);
        let mut sink = Vec::new();
        // Boundary above every symbol: the run can only end in an error.
        let err = dec.decode_run(&mut r, 100, &mut sink).unwrap_err();
        assert!(matches!(err, HuffmanError::Decode(StreamError::UnexpectedEof { .. })), "got {err:?}");
        // Whatever prefix decoded cleanly must match the serial walk.
        let mut serial = BitReader::new(truncated);
        let mut expect = Vec::new();
        while let Ok(sym) = dec.decode(&mut serial) {
            expect.push(sym as u8);
        }
        assert_eq!(sink, expect);
    }

    #[test]
    fn oversized_index_is_rejected() {
        // max_len of 25 would require a 32M-entry LUT; the constructor
        // refuses, mirroring the shared-memory constraint on the GPU.
        let lengths = vec![1u8, 1];
        let code = CanonicalCode::from_lengths(&lengths, 25).unwrap();
        assert!(matches!(DecodeTable::new(&code), Err(HuffmanError::InvalidMaxLength(25))));
    }
}
