//! Table-driven (single-lookup) decoder.
//!
//! This is the decoder design the paper uses on the GPU: a flat table with
//! `2^CWL` entries indexed by the next `CWL` bits of the stream. One lookup
//! yields the symbol and the true code length to consume — no tree walk, no
//! data-dependent branching, which keeps the 32 lanes of a warp from
//! diverging while they decode different sub-blocks (Section III-B-1).

use crate::{CanonicalCode, HuffmanError, Result};
use gompresso_bitstream::{BitReader, StreamError};

/// A flat decode look-up table for one canonical code.
#[derive(Debug, Clone)]
pub struct DecodeTable {
    /// `entries[bits]` = (symbol, code length); length 0 marks an invalid
    /// codeword prefix (possible when the code does not exhaust the Kraft
    /// budget).
    entries: Vec<(u16, u8)>,
    /// Index width in bits (the code's maximum codeword length).
    index_bits: u8,
}

impl DecodeTable {
    /// Builds the LUT for a canonical code.
    pub fn new(code: &CanonicalCode) -> Result<Self> {
        let index_bits = code.max_len();
        if index_bits == 0 || index_bits > 24 {
            return Err(HuffmanError::InvalidMaxLength(index_bits));
        }
        let size = 1usize << index_bits;
        let mut entries = vec![(0u16, 0u8); size];
        for (sym, entry) in code.entries().iter().enumerate() {
            if entry.len == 0 {
                continue;
            }
            // The bitstream is LSB-first, so the decoder peeks `index_bits`
            // bits whose low `entry.len` bits are the reversed codeword; all
            // possible values of the remaining high bits map to this symbol.
            let rev = entry.reversed();
            let step = 1usize << entry.len;
            let mut idx = rev as usize;
            while idx < size {
                entries[idx] = (sym as u16, entry.len);
                idx += step;
            }
        }
        Ok(Self { entries, index_bits })
    }

    /// Number of bits used to index the table (CWL).
    pub fn index_bits(&self) -> u8 {
        self.index_bits
    }

    /// Size of the table in entries (`2^CWL`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Shared-memory footprint of this table in bytes if it were resident on
    /// the GPU (4 bytes per entry — see the occupancy model).
    pub fn simulated_shared_bytes(&self) -> u32 {
        (self.entries.len() * 4) as u32
    }

    /// Raw table lookup: `(symbol, code length)` for a `CWL`-bit window.
    ///
    /// Length 0 marks a window that is not a valid codeword prefix. Exposed
    /// so reference decoders (tests, microbenchmarks) can reproduce the
    /// unfused peek/lookup/consume sequence against the fused
    /// [`Self::decode`] path.
    ///
    /// # Panics
    ///
    /// Panics if `window >= 2^index_bits` — callers must mask their peek to
    /// [`Self::index_bits`] bits, as `BitReader::peek_bits` does.
    #[inline]
    pub fn lookup(&self, window: u32) -> (u16, u8) {
        self.entries[window as usize]
    }

    /// Decodes one symbol from the bitstream.
    ///
    /// Fused hot path: one accumulator refill, one table lookup, one
    /// unchecked consume — instead of the peek/consume pair with its two
    /// width validations. An exhausted stream reports
    /// [`StreamError::UnexpectedEof`] directly (also when the zero-filled
    /// window happens to hit an unassigned table slot), and a stream that
    /// ends in the middle of a codeword reports the precise shortfall.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16> {
        Ok(self.decode_with_len(r)?.0)
    }

    /// Decodes one symbol and reports the number of bits consumed.
    #[inline]
    pub fn decode_with_len(&self, r: &mut BitReader<'_>) -> Result<(u16, u8)> {
        let (window, available) = r.peek_window(u32::from(self.index_bits));
        let (symbol, len) = self.entries[window as usize];
        if len == 0 {
            // Canonical codes always assign the all-zeros codeword to their
            // first symbol, so the zero-filled window of an exhausted stream
            // hits an assigned slot and EOF surfaces through the width check
            // below; this arm is defense in depth for tables whose zero slot
            // could ever be unassigned.
            return Err(if available == 0 {
                StreamError::UnexpectedEof { needed: 1, remaining: 0 }.into()
            } else {
                HuffmanError::InvalidCodeword { bits: window }
            });
        }
        let width = u32::from(len);
        if width > available {
            // Truncated mid-codeword: `peek_window` already refilled, so a
            // shortfall means the stream is exhausted. Report the byte
            // shortfall like the checked consume would.
            return Err(StreamError::UnexpectedEof {
                needed: ((width - available) as usize).div_ceil(8),
                remaining: (r.remaining_bits() / 8) as usize,
            }
            .into());
        }
        r.consume_peeked(width);
        Ok((symbol, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EncodeTable, Histogram};
    use gompresso_bitstream::BitWriter;

    fn code_for(counts: &[u64], max_len: u8) -> CanonicalCode {
        let mut h = Histogram::new(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            h.add_n(i as u16, c);
        }
        CanonicalCode::from_histogram(&h, max_len).unwrap()
    }

    #[test]
    fn lut_size_matches_cwl() {
        let code = code_for(&[3, 3, 2, 1], 10);
        let dec = DecodeTable::new(&code).unwrap();
        assert_eq!(dec.len(), 1024);
        assert_eq!(dec.index_bits(), 10);
        assert_eq!(dec.simulated_shared_bytes(), 4096);
        assert!(!dec.is_empty());
    }

    #[test]
    fn decode_handles_final_short_codeword() {
        // A stream whose last codeword does not fill the peek window: the
        // reader zero-fills, and the LUT must still resolve it.
        let code = code_for(&[10, 1], 10);
        let enc = EncodeTable::new(&code);
        let dec = DecodeTable::new(&code).unwrap();
        let mut w = BitWriter::new();
        enc.encode(&mut w, 1).unwrap();
        enc.encode(&mut w, 0).unwrap();
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap(), 1);
        assert_eq!(dec.decode(&mut r).unwrap(), 0);
    }

    #[test]
    fn decode_with_len_reports_consumed_bits() {
        let code = code_for(&[100, 10, 5, 1], 10);
        let enc = EncodeTable::new(&code);
        let dec = DecodeTable::new(&code).unwrap();
        let mut w = BitWriter::new();
        enc.encode(&mut w, 3).unwrap();
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let (sym, len) = dec.decode_with_len(&mut r).unwrap();
        assert_eq!(sym, 3);
        assert_eq!(len, enc.code_len(3).unwrap());
    }

    #[test]
    fn invalid_prefix_is_detected_when_code_is_incomplete() {
        // Single-symbol code: only codeword "0"; a stream starting with "1"
        // hits an unassigned LUT slot.
        let code = code_for(&[5], 4);
        let dec = DecodeTable::new(&code).unwrap();
        let bytes = [0b0000_0001u8];
        let mut r = BitReader::new(&bytes);
        assert!(matches!(dec.decode(&mut r), Err(HuffmanError::InvalidCodeword { .. })));
    }

    #[test]
    fn empty_stream_yields_unexpected_eof_directly() {
        let code = code_for(&[5, 5], 10);
        let dec = DecodeTable::new(&code).unwrap();
        let mut r = BitReader::new(&[]);
        assert!(matches!(dec.decode(&mut r), Err(HuffmanError::Decode(StreamError::UnexpectedEof { .. }))));
    }

    #[test]
    fn zero_window_is_always_assigned_so_eof_takes_the_width_path() {
        // Canonical construction gives the first symbol the all-zeros
        // codeword, so LUT slot 0 is assigned for every buildable table and
        // an exhausted stream reports EOF via the width-vs-available check
        // (not the unassigned-slot defense branch). Pin both facts.
        for lengths in [&[2u8, 2, 2][..], &[1, 7, 7, 6, 5, 4, 3][..], &[4, 4, 4][..]] {
            let code = CanonicalCode::from_lengths(lengths, 10).unwrap();
            let dec = DecodeTable::new(&code).unwrap();
            let (zero_sym, zero_len) = dec.lookup(0);
            assert_eq!(zero_sym, 0, "first symbol owns the zero codeword");
            assert!(zero_len > 0, "slot 0 must be assigned");
            let mut r = BitReader::new(&[]);
            assert!(matches!(
                dec.decode(&mut r),
                Err(HuffmanError::Decode(StreamError::UnexpectedEof { .. }))
            ));
        }
    }

    #[test]
    fn truncated_mid_codeword_is_unexpected_eof() {
        // Symbol 1 has an explicit 7-bit codeword. Write it twice (14 bits)
        // and keep only the first byte: the second codeword is cut after one
        // bit, and the decoder must report EOF (with the byte shortfall),
        // not InvalidCodeword.
        let code = CanonicalCode::from_lengths(&[1u8, 7, 7, 6, 5, 4, 3], 10).unwrap();
        let enc = EncodeTable::new(&code);
        let dec = DecodeTable::new(&code).unwrap();
        assert_eq!(enc.code_len(1).unwrap(), 7);
        let mut w = BitWriter::new();
        enc.encode(&mut w, 1).unwrap();
        enc.encode(&mut w, 1).unwrap();
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let truncated = &bytes[..1];
        let mut r = BitReader::new(truncated);
        assert_eq!(dec.decode(&mut r).unwrap(), 1);
        match dec.decode(&mut r) {
            Err(HuffmanError::Decode(StreamError::UnexpectedEof { needed, .. })) => {
                assert!(needed >= 1);
            }
            other => panic!("expected UnexpectedEof on truncated codeword, got {other:?}"),
        }
    }

    #[test]
    fn fused_decode_matches_unfused_lookup_walk() {
        // The fused decode must consume exactly the same bits as a manual
        // peek/lookup/consume walk over the same stream.
        let mut counts = vec![0u64; 64];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = (i as u64 % 11) + 1;
        }
        let code = code_for(&counts, 11);
        let enc = EncodeTable::new(&code);
        let dec = DecodeTable::new(&code).unwrap();
        let symbols: Vec<u16> = (0..2000u32).map(|i| ((i * 131) % 64) as u16).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            enc.encode(&mut w, s).unwrap();
        }
        let bytes = w.finish();
        let mut fused = BitReader::new(&bytes);
        let mut manual = BitReader::new(&bytes);
        for &expected in &symbols {
            let got = dec.decode(&mut fused).unwrap();
            let window = manual.peek_bits(u32::from(dec.index_bits())).unwrap();
            let (sym, len) = dec.lookup(window);
            manual.consume_bits(u32::from(len)).unwrap();
            assert_eq!(got, expected);
            assert_eq!(sym, expected);
            assert_eq!(fused.bit_position(), manual.bit_position());
        }
    }

    #[test]
    fn long_stream_roundtrip_with_many_symbols() {
        let mut counts = vec![0u64; 300];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = (i as u64 % 17) + 1;
        }
        let code = code_for(&counts, 12);
        let enc = EncodeTable::new(&code);
        let dec = DecodeTable::new(&code).unwrap();
        let symbols: Vec<u16> = (0..5000u32).map(|i| ((i * 7919) % 300) as u16).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            enc.encode(&mut w, s).unwrap();
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn oversized_index_is_rejected() {
        // max_len of 25 would require a 32M-entry LUT; the constructor
        // refuses, mirroring the shared-memory constraint on the GPU.
        let lengths = vec![1u8, 1];
        let code = CanonicalCode::from_lengths(&lengths, 25).unwrap();
        assert!(matches!(DecodeTable::new(&code), Err(HuffmanError::InvalidMaxLength(25))));
    }
}
