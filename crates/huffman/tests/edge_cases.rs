//! Edge-case tests for the Huffman layer: degenerate single-symbol
//! histograms, incompressible (uniform) data, and length-limited canonical
//! codes near their limits.

use gompresso_bitstream::{BitReader, BitWriter, ByteReader, ByteWriter};
use gompresso_huffman::{
    code_lengths, limited_code_lengths, CanonicalCode, DecodeTable, EncodeTable, Histogram,
    DEFAULT_MAX_CODE_LEN,
};

fn roundtrip(code: &CanonicalCode, symbols: &[u16]) -> u64 {
    let enc = EncodeTable::new(code);
    let dec = DecodeTable::new(code).unwrap();
    let mut w = BitWriter::new();
    for &s in symbols {
        enc.encode(&mut w, s).unwrap();
    }
    let bit_len = w.bit_len();
    let bytes = w.finish();
    let mut r = BitReader::new(&bytes);
    for &s in symbols {
        assert_eq!(dec.decode(&mut r).unwrap(), s);
    }
    bit_len
}

#[test]
fn single_symbol_histogram_round_trips() {
    // A block containing one distinct symbol still needs a decodable code;
    // the convention is a single 1-bit codeword.
    let mut hist = Histogram::new(300);
    hist.add_n(123, 10_000);
    let code = CanonicalCode::from_histogram(&hist, DEFAULT_MAX_CODE_LEN).unwrap();
    assert_eq!(code.longest_used(), 1);
    assert_eq!(code.entry(123).unwrap().len, 1);
    assert!(code.entry(0).unwrap().len == 0, "unused symbols carry no code");

    let symbols = vec![123u16; 4096];
    let bits = roundtrip(&code, &symbols);
    assert_eq!(bits, 4096, "degenerate stream must cost exactly 1 bit/symbol");

    // The serialized code (one length + zero runs) stays tiny.
    let mut w = ByteWriter::new();
    code.serialize(&mut w);
    let bytes = w.finish();
    assert!(bytes.len() <= 12, "serialized single-symbol code took {} bytes", bytes.len());
    let back = CanonicalCode::deserialize(&mut ByteReader::new(&bytes)).unwrap();
    assert_eq!(back, code);
}

#[test]
fn single_symbol_at_alphabet_edges() {
    for sym in [0u16, 255] {
        let mut hist = Histogram::new(256);
        hist.add(sym);
        let code = CanonicalCode::from_histogram(&hist, DEFAULT_MAX_CODE_LEN).unwrap();
        roundtrip(&code, &[sym; 100]);
    }
}

#[test]
fn incompressible_uniform_data_costs_eight_bits_per_symbol() {
    // A flat histogram over 256 symbols admits no compression: every
    // codeword must come out at exactly 8 bits.
    let symbols: Vec<u16> = (0..4096u32).map(|i| (i % 256) as u16).collect();
    let hist = Histogram::from_symbols(256, &symbols);
    let code = CanonicalCode::from_histogram(&hist, DEFAULT_MAX_CODE_LEN).unwrap();
    assert!(code.entries().iter().all(|e| e.len == 8));

    let bits = roundtrip(&code, &symbols);
    assert_eq!(bits, symbols.len() as u64 * 8);
    // ...which matches the entropy bound for the uniform distribution.
    assert!((hist.entropy_bits() - 8.0).abs() < 1e-9);
}

#[test]
fn near_uniform_noise_stays_within_a_bit_of_entropy() {
    // Pseudo-random bytes (fixed multiplicative hash — no RNG dependency):
    // the average code length may not beat entropy and must stay within
    // one bit of it (Huffman's classic guarantee).
    let symbols: Vec<u16> =
        (0..20_000u32).map(|i| ((i.wrapping_mul(2654435761) >> 19) & 0xFF) as u16).collect();
    let hist = Histogram::from_symbols(256, &symbols);
    let code = CanonicalCode::from_histogram(&hist, 12).unwrap();
    let bits = roundtrip(&code, &symbols);
    let mean_len = bits as f64 / symbols.len() as f64;
    let entropy = hist.entropy_bits();
    assert!(mean_len >= entropy - 1e-9, "mean {mean_len} beats entropy {entropy}");
    assert!(mean_len < entropy + 1.0, "mean {mean_len} exceeds entropy {entropy} + 1");
}

#[test]
fn length_limit_binds_on_skewed_data_and_still_round_trips() {
    // Geometric frequencies force the unrestricted tree past 10 bits, so
    // the paper's CWL = 10 limit actually binds.
    let mut freqs = vec![0u64; 32];
    for (i, f) in freqs.iter_mut().enumerate() {
        *f = 1u64 << (31 - i).min(40);
    }
    let unrestricted = code_lengths(&freqs).unwrap();
    assert!(
        unrestricted.iter().copied().max().unwrap() > DEFAULT_MAX_CODE_LEN,
        "test premise: optimal tree must exceed the limit"
    );

    let mut hist = Histogram::new(freqs.len());
    for (i, &f) in freqs.iter().enumerate() {
        hist.add_n(i as u16, f.min(10_000)); // same shape, bounded counts
    }
    let code = CanonicalCode::from_histogram(&hist, DEFAULT_MAX_CODE_LEN).unwrap();
    assert!(code.longest_used() <= DEFAULT_MAX_CODE_LEN);
    assert_eq!(code.max_len(), DEFAULT_MAX_CODE_LEN);

    // Encode a stream drawn (deterministically) from the skewed shape.
    let mut symbols = Vec::new();
    for (sym, &f) in freqs.iter().enumerate() {
        for _ in 0..(f.min(50)) {
            symbols.push(sym as u16);
        }
    }
    roundtrip(&code, &symbols);
}

#[test]
fn limited_code_is_optimal_under_its_limit_not_under_the_optimum() {
    // Package-merge pays for the limit: weighted length under the limit is
    // at least the unrestricted optimum, and monotonically improves as the
    // limit loosens.
    let freqs: Vec<u64> = vec![1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144];
    let weighted =
        |lengths: &[u8]| -> u64 { freqs.iter().zip(lengths).map(|(&f, &l)| f * u64::from(l)).sum() };
    let optimum = weighted(&code_lengths(&freqs).unwrap());
    let mut previous = u64::MAX;
    for limit in [4u8, 5, 6, 8, 12] {
        let lengths = limited_code_lengths(&freqs, limit).unwrap();
        assert!(lengths.iter().all(|&l| l <= limit));
        let total = weighted(&lengths);
        assert!(total >= optimum, "limit {limit} beat the unrestricted optimum");
        assert!(total <= previous, "loosening the limit to {limit} made the code worse");
        previous = total;
    }
    // With a loose enough limit, the optimum is reached exactly.
    assert_eq!(previous, optimum);
}

#[test]
fn alphabet_exactly_filling_the_limit_is_a_complete_code() {
    // 2^4 = 16 equi-probable symbols under a 4-bit limit: the only valid
    // code is fixed-length 4 bits, and the decode table is exactly full.
    let symbols: Vec<u16> = (0..16u16).cycle().take(640).collect();
    let hist = Histogram::from_symbols(16, &symbols);
    let code = CanonicalCode::from_histogram(&hist, 4).unwrap();
    assert!(code.entries().iter().all(|e| e.len == 4));
    let dec = DecodeTable::new(&code).unwrap();
    assert_eq!(dec.index_bits(), 4);
    roundtrip(&code, &symbols);
}

#[test]
fn decode_table_rejects_codes_wider_than_it_can_index() {
    // from_lengths with a declared max shorter than an actual length must
    // be rejected up front rather than corrupting the LUT.
    assert!(CanonicalCode::from_lengths(&[1, 2, 3, 3], 2).is_err());
}
