//! LZ4-like byte-level codec.
//!
//! Mirrors LZ4's design point: a 64 KB window, 4-byte minimum matches, a
//! single-probe hash table and a fully byte-aligned output format. It reuses
//! the Gompresso byte-level block encoding, wrapped in a tiny self-contained
//! frame (uncompressed length + payload).

use crate::{BaselineError, Codec, Result};
use gompresso_bitstream::{read_varint, write_varint, ByteReader, ByteWriter};
use gompresso_format::ByteBlock;
use gompresso_lz77::{decompress_block, decompress_block_into, Matcher, MatcherConfig, SequenceBlock};

/// The LZ4-like baseline codec.
#[derive(Debug, Clone)]
pub struct Lz4Like {
    config: MatcherConfig,
}

impl Default for Lz4Like {
    fn default() -> Self {
        Self::new()
    }
}

impl Lz4Like {
    /// Creates the codec with LZ4-style matching parameters.
    pub fn new() -> Self {
        Self { config: MatcherConfig::lz4_like() }
    }

    /// Parses a frame back into its LZ77 sequence block.
    fn decode_frame(input: &[u8]) -> Result<SequenceBlock> {
        let mut r = ByteReader::new(input);
        let expected_len = read_varint(&mut r)? as usize;
        if expected_len > (1 << 31) {
            return Err(BaselineError::Malformed { reason: "declared length is implausibly large" });
        }
        let block = ByteBlock::deserialize(&mut r)
            .map_err(|_| BaselineError::Malformed { reason: "invalid byte-block payload" })?;
        let sequences = block
            .decode()
            .map_err(|_| BaselineError::Malformed { reason: "invalid byte-block sequences" })?;
        if sequences.uncompressed_len != expected_len {
            return Err(BaselineError::Malformed { reason: "frame length disagrees with block" });
        }
        Ok(sequences)
    }
}

impl Codec for Lz4Like {
    fn name(&self) -> &'static str {
        "lz4-like"
    }

    fn compress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let block = Matcher::new(self.config.clone()).compress(input);
        let encoded = ByteBlock::encode(&block).map_err(|_| BaselineError::Malformed {
            reason: "match offset exceeded the byte-format limit",
        })?;
        let mut w = ByteWriter::with_capacity(encoded.data.len() + 16);
        write_varint(&mut w, input.len() as u64);
        encoded.serialize(&mut w);
        Ok(w.finish())
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        Ok(decompress_block(&Self::decode_frame(input)?)?)
    }

    fn decompress_into(&self, input: &[u8], out: &mut [u8]) -> Result<usize> {
        Ok(decompress_block_into(&Self::decode_frame(input)?, out)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let codec = Lz4Like::new();
        let data = b"fast byte level compression for the masses ".repeat(500);
        let compressed = codec.compress(&data).unwrap();
        assert!(compressed.len() < data.len() / 3);
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
        assert_eq!(codec.name(), "lz4-like");
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        let codec = Lz4Like::new();
        for data in [&b""[..], b"a", b"ab", b"abcd"] {
            let compressed = codec.compress(data).unwrap();
            assert_eq!(codec.decompress(&compressed).unwrap(), data);
        }
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let codec = Lz4Like::new();
        let data = b"hello hello hello hello".repeat(50);
        let compressed = codec.compress(&data).unwrap();
        assert!(codec.decompress(&compressed[..compressed.len() / 2]).is_err());
        assert!(codec.decompress(&[]).is_err());
    }

    #[test]
    fn uses_a_larger_window_than_gompresso_byte() {
        // Two identical 2 KiB chunks 40 KiB apart are matchable with a 64 KiB
        // window but not with Gompresso's default 8 KiB window.
        let chunk: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
        let mut data = chunk.clone();
        data.extend((0..40_000u32).map(|i| (i.wrapping_mul(2654435761) >> 9) as u8));
        data.extend_from_slice(&chunk);
        let codec = Lz4Like::new();
        let compressed = codec.compress(&data).unwrap();
        // The second chunk compresses away, so the output is clearly smaller
        // than the input minus one chunk would suggest for a small window.
        assert!(compressed.len() < data.len() - chunk.len() / 2);
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }
}
