//! Block-parallel CPU baseline codecs.
//!
//! Figure 13/14 of the paper compare Gompresso against four CPU libraries —
//! zlib (DEFLATE), LZ4, Snappy and Zstd — each parallelised by splitting the
//! input into 2 MB blocks that worker threads pull from a common queue.
//! Those libraries cannot be vendored here, so this crate provides clean-room
//! Rust implementations of the same *format families*, built on the shared
//! LZ77/Huffman substrates:
//!
//! * [`miniflate::Miniflate`] — DEFLATE-like: 32 KB window, two canonical
//!   Huffman trees, bit-level output (the stand-in for zlib/gzip);
//! * [`lz4like::Lz4Like`] — byte-level token/offset framing with a 64 KB
//!   window and a single-probe hash table (the stand-in for LZ4);
//! * [`snappylike::SnappyLike`] — tag-byte oriented encoding with varint
//!   literal runs (the stand-in for Snappy);
//! * [`zstdlike::ZstdLike`] — larger window, deeper matching and a
//!   Huffman-coded literal stream over byte-level sequence framing (the
//!   stand-in for Zstd's LZ77+entropy design; see `DESIGN.md` for why the
//!   FSE stage is approximated by a table-driven Huffman stage);
//! * [`parallel::BlockParallel`] — the 2 MB block splitter and work-queue
//!   scheduler used to parallelise all of the above, mirroring the paper's
//!   methodology (Section V-D).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod lz4like;
pub mod miniflate;
pub mod parallel;
pub mod snappylike;
pub mod zstdlike;

pub use error::BaselineError;
pub use lz4like::Lz4Like;
pub use miniflate::Miniflate;
pub use parallel::BlockParallel;
pub use snappylike::SnappyLike;
pub use zstdlike::ZstdLike;

/// Result alias for baseline codecs.
pub type Result<T> = std::result::Result<T, BaselineError>;

/// A single-threaded lossless codec operating on one block of data.
///
/// Implementations must be `Send + Sync` so the block-parallel driver can
/// share one codec instance across worker threads.
pub trait Codec: Send + Sync {
    /// Short name used in experiment output ("zlib-like", "lz4-like", …).
    fn name(&self) -> &'static str;

    /// Compresses one block.
    fn compress(&self, input: &[u8]) -> Result<Vec<u8>>;

    /// Decompresses one block previously produced by [`Codec::compress`].
    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>>;

    /// Decompresses one block directly into a caller-provided buffer,
    /// returning the number of bytes written.
    ///
    /// `out` must be sized *exactly* to the block's decompressed length
    /// (which the caller knows from its framing, as the block-parallel
    /// driver does); a mismatch in either direction is an error. The driver
    /// hands each worker the block's disjoint slice of the file-level
    /// output buffer, so codecs that implement this natively (all the
    /// LZ77-based ones) write every decompressed byte exactly once. The
    /// default implementation falls back to [`Codec::decompress`] plus a
    /// copy for codecs without an in-place path.
    fn decompress_into(&self, input: &[u8], out: &mut [u8]) -> Result<usize> {
        let data = self.decompress(input)?;
        if data.len() != out.len() {
            return Err(BaselineError::Malformed { reason: "block size disagrees with its output slot" });
        }
        out.copy_from_slice(&data);
        Ok(data.len())
    }
}

/// Every baseline codec boxed, for sweeping experiments.
pub fn all_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(Miniflate::new()),
        Box::new(Lz4Like::new()),
        Box::new(SnappyLike::new()),
        Box::new(ZstdLike::new()),
    ]
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn compressible() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(proptest::collection::vec(0u8..12, 1..48), 0..150)
            .prop_map(|chunks| chunks.concat())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every baseline codec round-trips arbitrary compressible data.
        #[test]
        fn all_codecs_roundtrip(data in compressible()) {
            for codec in all_codecs() {
                let compressed = codec.compress(&data).unwrap();
                let restored = codec.decompress(&compressed).unwrap();
                prop_assert_eq!(&restored, &data, "codec {}", codec.name());
            }
        }

        /// Random (incompressible) data also round-trips.
        #[test]
        fn all_codecs_roundtrip_random(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
            for codec in all_codecs() {
                let compressed = codec.compress(&data).unwrap();
                let restored = codec.decompress(&compressed).unwrap();
                prop_assert_eq!(&restored, &data, "codec {}", codec.name());
            }
        }

        /// Decompressing corrupted data must never panic.
        #[test]
        fn corrupt_data_never_panics(data in compressible(), flip in any::<u8>(), at in any::<u16>()) {
            for codec in all_codecs() {
                let mut compressed = codec.compress(&data).unwrap();
                if !compressed.is_empty() {
                    let idx = usize::from(at) % compressed.len();
                    compressed[idx] ^= flip;
                }
                let _ = codec.decompress(&compressed);
            }
        }
    }
}
