//! Block-parallel driver for the CPU baseline codecs.
//!
//! The paper parallelises the single-threaded CPU libraries by splitting the
//! input into equally-sized blocks (2 MB worked best) that worker threads
//! pull from a common queue: "Once a thread has completed decompressing a
//! data block, it immediately processes the next block from a common queue.
//! This balances the load across CPU threads despite input-dependent
//! processing times" (Section V-D). This module reproduces that scheme: a
//! shared index acts as the work queue, worker threads claim blocks until it
//! is drained, and per-block results are stitched back together in order.

use crate::{BaselineError, Codec, Result};
use gompresso_bitstream::{read_varint, write_varint, ByteReader, ByteWriter};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default block size for the CPU baselines (the paper's 2 MB sweet spot).
pub const DEFAULT_BLOCK_SIZE: usize = 2 * 1024 * 1024;

/// Maximum total uncompressed size of one block-parallel frame (2 GiB).
/// Enforced symmetrically at compress and decompress time so a corrupt
/// frame header cannot request an output allocation far beyond anything
/// the driver would ever have produced.
const FRAME_TOTAL_CAP: usize = 1 << 31;

/// Wraps a single-block [`Codec`] with block splitting and a work-queue
/// parallel decompressor.
#[derive(Debug)]
pub struct BlockParallel<C: Codec> {
    codec: C,
    block_size: usize,
    threads: usize,
}

impl<C: Codec> BlockParallel<C> {
    /// Creates a driver with the paper's 2 MB blocks and one worker per
    /// available CPU.
    pub fn new(codec: C) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { codec, block_size: DEFAULT_BLOCK_SIZE, threads }
    }

    /// Overrides the block size (must be nonzero).
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be nonzero");
        self.block_size = block_size;
        self
    }

    /// Overrides the number of worker threads (must be nonzero).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be nonzero");
        self.threads = threads;
        self
    }

    /// The wrapped codec's name.
    pub fn name(&self) -> &'static str {
        self.codec.name()
    }

    /// Number of worker threads used for decompression.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Compresses `input` block by block (in parallel), producing a framed
    /// stream: block size, block count, per-block compressed sizes, then the
    /// concatenated block payloads.
    ///
    /// Inputs above the 2 GiB frame cap are refused, symmetrically with
    /// [`Self::decompress`] — the driver exists for the paper's ≤ 1 GB
    /// benchmark datasets.
    pub fn compress(&self, input: &[u8]) -> Result<Vec<u8>> {
        if input.len() > FRAME_TOTAL_CAP {
            return Err(BaselineError::Malformed { reason: "input exceeds the 2 GiB frame cap" });
        }
        let chunks: Vec<&[u8]> = input.chunks(self.block_size).collect();
        let compressed = self.run_queue(chunks, |chunk| self.codec.compress(chunk))?;

        let mut w = ByteWriter::with_capacity(input.len() / 2 + 64);
        write_varint(&mut w, self.block_size as u64);
        write_varint(&mut w, input.len() as u64);
        write_varint(&mut w, compressed.len() as u64);
        for block in &compressed {
            write_varint(&mut w, block.len() as u64);
        }
        for block in &compressed {
            w.write_bytes(block);
        }
        Ok(w.finish())
    }

    /// Decompresses a stream produced by [`Self::compress`] using the
    /// work-queue scheduler.
    ///
    /// The output buffer is allocated once and split into per-block disjoint
    /// slices; workers decompress their claimed block straight into its
    /// slice via [`Codec::decompress_into`], so nothing is re-copied during
    /// reassembly. The frame geometry (block size vs. declared total, and
    /// the same 2 GiB cap [`Self::compress`] enforces on its input) is
    /// validated *before* the allocation so a corrupt header cannot request
    /// an output vastly larger than its block list supports.
    pub fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let mut r = ByteReader::new(input);
        let block_size = read_varint(&mut r)? as usize;
        let total_len = read_varint(&mut r)? as usize;
        let n_blocks = read_varint(&mut r)? as usize;
        if block_size == 0 || n_blocks > (1 << 28) {
            return Err(BaselineError::Malformed { reason: "invalid block-parallel frame header" });
        }
        if total_len > FRAME_TOTAL_CAP {
            return Err(BaselineError::Malformed { reason: "declared length is implausibly large" });
        }
        let expected_blocks = total_len.div_ceil(block_size);
        if expected_blocks != n_blocks {
            return Err(BaselineError::Malformed { reason: "block count disagrees with declared length" });
        }
        let mut sizes = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            sizes.push(read_varint(&mut r)? as usize);
        }
        let mut payloads = Vec::with_capacity(n_blocks);
        for &size in &sizes {
            payloads.push(r.read_bytes(size)?);
        }

        let mut out = vec![0u8; total_len];
        // Per-block work items: payload plus the block's disjoint output
        // slice, moved into whichever worker claims the block.
        let work: Vec<(&[u8], &mut [u8])> = {
            let mut work = Vec::with_capacity(n_blocks);
            let mut rest: &mut [u8] = &mut out;
            for payload in &payloads {
                let cut = block_size.min(rest.len());
                let (dst, tail) = rest.split_at_mut(cut);
                rest = tail;
                work.push((*payload, dst));
            }
            work
        };

        self.run_queue(work, |(payload, dst)| {
            let expected = dst.len();
            let written = self.codec.decompress_into(payload, dst)?;
            if written == expected {
                Ok(())
            } else {
                Err(BaselineError::Malformed { reason: "block size disagrees with frame header" })
            }
        })?;
        Ok(out)
    }

    /// Runs `work` over every item across the worker threads, pulling the
    /// next index from a shared counter (the common queue), and returns the
    /// results in item order.
    ///
    /// Items are moved into the claiming worker through per-item slots,
    /// which is what lets decompression hand each worker exclusive `&mut`
    /// output slices.
    fn run_queue<T, R, F>(&self, items: Vec<T>, work: F) -> Result<Vec<R>>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> Result<R> + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|item| Mutex::new(Some(item))).collect();
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(n);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item =
                        slots[i].lock().expect("work slot poisoned").take().expect("slot claimed once");
                    *results[i].lock().expect("result slot poisoned") = Some(work(item));
                });
            }
        });

        let mut out = Vec::with_capacity(n);
        for slot in results {
            match slot.into_inner().expect("result slot poisoned") {
                Some(Ok(r)) => out.push(r),
                Some(Err(e)) => return Err(e),
                None => return Err(BaselineError::Malformed { reason: "worker abandoned a block" }),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lz4Like, Miniflate, SnappyLike, ZstdLike};

    fn corpus(len: usize) -> Vec<u8> {
        let mut data = Vec::with_capacity(len);
        let mut i = 0u64;
        while data.len() < len {
            data.extend_from_slice(format!("record {} :: some payload text {}\n", i, i % 321).as_bytes());
            i += 1;
        }
        data.truncate(len);
        data
    }

    #[test]
    fn parallel_roundtrip_across_blocks() {
        let data = corpus(700_000);
        let driver = BlockParallel::new(Lz4Like::new()).with_block_size(64 * 1024).with_threads(4);
        let compressed = driver.compress(&data).unwrap();
        assert!(compressed.len() < data.len());
        assert_eq!(driver.decompress(&compressed).unwrap(), data);
        assert_eq!(driver.name(), "lz4-like");
        assert_eq!(driver.threads(), 4);
    }

    #[test]
    fn all_codecs_work_under_the_driver() {
        let data = corpus(300_000);
        macro_rules! check {
            ($codec:expr) => {{
                let driver = BlockParallel::new($codec).with_block_size(32 * 1024).with_threads(3);
                let compressed = driver.compress(&data).unwrap();
                assert_eq!(driver.decompress(&compressed).unwrap(), data, "codec {}", driver.name());
            }};
        }
        check!(Miniflate::new());
        check!(Lz4Like::new());
        check!(SnappyLike::new());
        check!(ZstdLike::new());
    }

    #[test]
    fn single_thread_and_single_block_edge_cases() {
        let data = corpus(10_000);
        let driver = BlockParallel::new(SnappyLike::new()).with_threads(1);
        let compressed = driver.compress(&data).unwrap();
        assert_eq!(driver.decompress(&compressed).unwrap(), data);

        let empty = driver.compress(&[]).unwrap();
        assert_eq!(driver.decompress(&empty).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn results_are_identical_regardless_of_thread_count() {
        let data = corpus(500_000);
        let one = BlockParallel::new(ZstdLike::new()).with_block_size(64 * 1024).with_threads(1);
        let many = BlockParallel::new(ZstdLike::new()).with_block_size(64 * 1024).with_threads(8);
        assert_eq!(one.compress(&data).unwrap(), many.compress(&data).unwrap());
    }

    #[test]
    fn hostile_frame_length_is_rejected_before_allocating() {
        // A hand-built ~16-byte frame declaring a 1 TiB output must be
        // rejected by header validation, not die attempting the allocation.
        let mut w = ByteWriter::new();
        write_varint(&mut w, 1u64 << 40); // block_size
        write_varint(&mut w, 1u64 << 40); // total_len
        write_varint(&mut w, 1); // n_blocks
        write_varint(&mut w, 4); // payload size
        w.write_bytes(b"oops");
        let frame = w.finish();
        let driver = BlockParallel::new(Lz4Like::new());
        assert!(matches!(driver.decompress(&frame), Err(BaselineError::Malformed { .. })));
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let data = corpus(200_000);
        let driver = BlockParallel::new(Lz4Like::new()).with_block_size(32 * 1024);
        let compressed = driver.compress(&data).unwrap();
        assert!(driver.decompress(&compressed[..compressed.len() / 2]).is_err());
        assert!(driver.decompress(&[]).is_err());
    }

    #[test]
    #[should_panic(expected = "block size must be nonzero")]
    fn zero_block_size_is_rejected() {
        let _ = BlockParallel::new(Lz4Like::new()).with_block_size(0);
    }
}
