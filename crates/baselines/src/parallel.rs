//! Block-parallel driver for the CPU baseline codecs.
//!
//! The paper parallelises the single-threaded CPU libraries by splitting the
//! input into equally-sized blocks (2 MB worked best) that worker threads
//! pull from a common queue: "Once a thread has completed decompressing a
//! data block, it immediately processes the next block from a common queue.
//! This balances the load across CPU threads despite input-dependent
//! processing times" (Section V-D). This module reproduces that scheme: a
//! shared index acts as the work queue, worker threads claim blocks until it
//! is drained, and per-block results are stitched back together in order.

use crate::{BaselineError, Codec, Result};
use gompresso_bitstream::{read_varint, write_varint, ByteReader, ByteWriter};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default block size for the CPU baselines (the paper's 2 MB sweet spot).
pub const DEFAULT_BLOCK_SIZE: usize = 2 * 1024 * 1024;

/// Wraps a single-block [`Codec`] with block splitting and a work-queue
/// parallel decompressor.
#[derive(Debug)]
pub struct BlockParallel<C: Codec> {
    codec: C,
    block_size: usize,
    threads: usize,
}

impl<C: Codec> BlockParallel<C> {
    /// Creates a driver with the paper's 2 MB blocks and one worker per
    /// available CPU.
    pub fn new(codec: C) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { codec, block_size: DEFAULT_BLOCK_SIZE, threads }
    }

    /// Overrides the block size (must be nonzero).
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be nonzero");
        self.block_size = block_size;
        self
    }

    /// Overrides the number of worker threads (must be nonzero).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be nonzero");
        self.threads = threads;
        self
    }

    /// The wrapped codec's name.
    pub fn name(&self) -> &'static str {
        self.codec.name()
    }

    /// Number of worker threads used for decompression.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Compresses `input` block by block (in parallel), producing a framed
    /// stream: block size, block count, per-block compressed sizes, then the
    /// concatenated block payloads.
    pub fn compress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let chunks: Vec<&[u8]> = input.chunks(self.block_size).collect();
        let compressed = self.run_indexed(chunks.len(), |i| self.codec.compress(chunks[i]))?;

        let mut w = ByteWriter::with_capacity(input.len() / 2 + 64);
        write_varint(&mut w, self.block_size as u64);
        write_varint(&mut w, input.len() as u64);
        write_varint(&mut w, compressed.len() as u64);
        for block in &compressed {
            write_varint(&mut w, block.len() as u64);
        }
        for block in &compressed {
            w.write_bytes(block);
        }
        Ok(w.finish())
    }

    /// Decompresses a stream produced by [`Self::compress`] using the
    /// work-queue scheduler.
    pub fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let mut r = ByteReader::new(input);
        let block_size = read_varint(&mut r)? as usize;
        let total_len = read_varint(&mut r)? as usize;
        let n_blocks = read_varint(&mut r)? as usize;
        if block_size == 0 || n_blocks > (1 << 28) {
            return Err(BaselineError::Malformed { reason: "invalid block-parallel frame header" });
        }
        let mut sizes = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            sizes.push(read_varint(&mut r)? as usize);
        }
        let mut payloads = Vec::with_capacity(n_blocks);
        for &size in &sizes {
            payloads.push(r.read_bytes(size)?);
        }

        let blocks = self.run_indexed(n_blocks, |i| self.codec.decompress(payloads[i]))?;
        let mut out = Vec::with_capacity(total_len);
        for block in blocks {
            out.extend_from_slice(&block);
        }
        if out.len() != total_len {
            return Err(BaselineError::Malformed { reason: "reassembled size disagrees with frame header" });
        }
        Ok(out)
    }

    /// Runs `work(i)` for every `i < n` across the worker threads, pulling
    /// indices from a shared counter (the common queue), and returns the
    /// results in index order.
    fn run_indexed<F>(&self, n: usize, work: F) -> Result<Vec<Vec<u8>>>
    where
        F: Fn(usize) -> Result<Vec<u8>> + Sync,
    {
        if n == 0 {
            return Ok(Vec::new());
        }
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<Vec<u8>>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(n);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = work(i);
                    *results[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });

        let mut out = Vec::with_capacity(n);
        for slot in results {
            match slot.into_inner().expect("result slot poisoned") {
                Some(Ok(block)) => out.push(block),
                Some(Err(e)) => return Err(e),
                None => return Err(BaselineError::Malformed { reason: "worker abandoned a block" }),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lz4Like, Miniflate, SnappyLike, ZstdLike};

    fn corpus(len: usize) -> Vec<u8> {
        let mut data = Vec::with_capacity(len);
        let mut i = 0u64;
        while data.len() < len {
            data.extend_from_slice(format!("record {} :: some payload text {}\n", i, i % 321).as_bytes());
            i += 1;
        }
        data.truncate(len);
        data
    }

    #[test]
    fn parallel_roundtrip_across_blocks() {
        let data = corpus(700_000);
        let driver = BlockParallel::new(Lz4Like::new()).with_block_size(64 * 1024).with_threads(4);
        let compressed = driver.compress(&data).unwrap();
        assert!(compressed.len() < data.len());
        assert_eq!(driver.decompress(&compressed).unwrap(), data);
        assert_eq!(driver.name(), "lz4-like");
        assert_eq!(driver.threads(), 4);
    }

    #[test]
    fn all_codecs_work_under_the_driver() {
        let data = corpus(300_000);
        macro_rules! check {
            ($codec:expr) => {{
                let driver = BlockParallel::new($codec).with_block_size(32 * 1024).with_threads(3);
                let compressed = driver.compress(&data).unwrap();
                assert_eq!(driver.decompress(&compressed).unwrap(), data, "codec {}", driver.name());
            }};
        }
        check!(Miniflate::new());
        check!(Lz4Like::new());
        check!(SnappyLike::new());
        check!(ZstdLike::new());
    }

    #[test]
    fn single_thread_and_single_block_edge_cases() {
        let data = corpus(10_000);
        let driver = BlockParallel::new(SnappyLike::new()).with_threads(1);
        let compressed = driver.compress(&data).unwrap();
        assert_eq!(driver.decompress(&compressed).unwrap(), data);

        let empty = driver.compress(&[]).unwrap();
        assert_eq!(driver.decompress(&empty).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn results_are_identical_regardless_of_thread_count() {
        let data = corpus(500_000);
        let one = BlockParallel::new(ZstdLike::new()).with_block_size(64 * 1024).with_threads(1);
        let many = BlockParallel::new(ZstdLike::new()).with_block_size(64 * 1024).with_threads(8);
        assert_eq!(one.compress(&data).unwrap(), many.compress(&data).unwrap());
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let data = corpus(200_000);
        let driver = BlockParallel::new(Lz4Like::new()).with_block_size(32 * 1024);
        let compressed = driver.compress(&data).unwrap();
        assert!(driver.decompress(&compressed[..compressed.len() / 2]).is_err());
        assert!(driver.decompress(&[]).is_err());
    }

    #[test]
    #[should_panic(expected = "block size must be nonzero")]
    fn zero_block_size_is_rejected() {
        let _ = BlockParallel::new(Lz4Like::new()).with_block_size(0);
    }
}
