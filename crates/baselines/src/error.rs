//! Error type shared by the baseline codecs.

use gompresso_bitstream::StreamError;
use gompresso_huffman::HuffmanError;
use gompresso_lz77::Lz77Error;
use std::fmt;

/// Errors surfaced by the baseline codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The compressed stream is structurally invalid.
    Malformed {
        /// Description of the problem.
        reason: &'static str,
    },
    /// The stream ended prematurely.
    Stream(StreamError),
    /// An entropy-coding error occurred.
    Huffman(HuffmanError),
    /// An LZ77 structural error occurred.
    Lz77(Lz77Error),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Malformed { reason } => write!(f, "malformed compressed stream: {reason}"),
            BaselineError::Stream(e) => write!(f, "stream error: {e}"),
            BaselineError::Huffman(e) => write!(f, "huffman error: {e}"),
            BaselineError::Lz77(e) => write!(f, "lz77 error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Stream(e) => Some(e),
            BaselineError::Huffman(e) => Some(e),
            BaselineError::Lz77(e) => Some(e),
            BaselineError::Malformed { .. } => None,
        }
    }
}

impl From<StreamError> for BaselineError {
    fn from(e: StreamError) -> Self {
        BaselineError::Stream(e)
    }
}

impl From<HuffmanError> for BaselineError {
    fn from(e: HuffmanError) -> Self {
        BaselineError::Huffman(e)
    }
}

impl From<Lz77Error> for BaselineError {
    fn from(e: Lz77Error) -> Self {
        BaselineError::Lz77(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: BaselineError = StreamError::VarintOverflow.into();
        assert!(matches!(e, BaselineError::Stream(_)));
        let e: BaselineError = HuffmanError::EmptyAlphabet.into();
        assert!(matches!(e, BaselineError::Huffman(_)));
        let e: BaselineError = Lz77Error::ZeroOffset { sequence: 0 }.into();
        assert!(matches!(e, BaselineError::Lz77(_)));
        assert!(BaselineError::Malformed { reason: "bad tag" }.to_string().contains("bad tag"));
    }
}
