//! DEFLATE-like bit-level codec ("miniflate") — the stand-in for zlib/gzip.
//!
//! Matches the DEFLATE design point: a 32 KB window, matches up to 258
//! bytes, hash-chain match search, and two canonical Huffman trees
//! (literal/length and distance) over a bit-level output stream. Unlike
//! Gompresso/Bit there is no sub-block partitioning and no codeword-length
//! limit beyond DEFLATE's 15 bits, so decoding is inherently sequential
//! within a block — exactly the property that forces the paper's CPU
//! comparison to parallelise across 2 MB blocks only.

use crate::{BaselineError, Codec, Result};
use gompresso_bitstream::{read_varint, write_varint, ByteReader, ByteWriter};
use gompresso_format::{token_code::TokenCoder, BitBlock};
use gompresso_lz77::{decompress_block, decompress_block_into, Matcher, MatcherConfig, SequenceBlock};

/// The DEFLATE-like baseline codec.
#[derive(Debug, Clone)]
pub struct Miniflate {
    config: MatcherConfig,
    max_codeword_len: u8,
}

impl Default for Miniflate {
    fn default() -> Self {
        Self::new()
    }
}

impl Miniflate {
    /// Creates the codec with DEFLATE-style parameters.
    pub fn new() -> Self {
        Self { config: MatcherConfig::deflate_like(), max_codeword_len: 15 }
    }

    fn coder(&self) -> Result<TokenCoder> {
        TokenCoder::new(
            self.config.min_match_len as u32,
            self.config.max_match_len as u32,
            self.config.window_size as u32,
        )
        .map_err(|_| BaselineError::Malformed { reason: "invalid token coder parameters" })
    }

    /// Parses a frame back into its LZ77 sequence block.
    fn decode_frame(&self, input: &[u8]) -> Result<SequenceBlock> {
        let mut r = ByteReader::new(input);
        let expected_len = read_varint(&mut r)? as usize;
        if expected_len > (1 << 31) {
            return Err(BaselineError::Malformed { reason: "declared length is implausibly large" });
        }
        let bit = BitBlock::deserialize(&mut r)
            .map_err(|_| BaselineError::Malformed { reason: "invalid bit-block payload" })?;
        let coder = self.coder()?;
        let block = bit
            .decode_all(&coder)
            .map_err(|_| BaselineError::Malformed { reason: "invalid bit-block contents" })?;
        if block.uncompressed_len != expected_len {
            return Err(BaselineError::Malformed { reason: "frame length disagrees with block" });
        }
        Ok(block)
    }
}

impl Codec for Miniflate {
    fn name(&self) -> &'static str {
        "zlib-like"
    }

    fn compress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let block = Matcher::new(self.config.clone()).compress(input);
        let coder = self.coder()?;
        // One giant sub-block: the decoder walks the whole bitstream
        // sequentially, as zlib does.
        let bit = BitBlock::encode(&block, &coder, u32::MAX, self.max_codeword_len)
            .map_err(|_| BaselineError::Malformed { reason: "entropy coding failed" })?;
        let mut w = ByteWriter::with_capacity(input.len() / 2 + 64);
        write_varint(&mut w, input.len() as u64);
        bit.serialize(&mut w);
        Ok(w.finish())
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        Ok(decompress_block(&self.decode_frame(input)?)?)
    }

    fn decompress_into(&self, input: &[u8], out: &mut [u8]) -> Result<usize> {
        Ok(decompress_block_into(&self.decode_frame(input)?, out)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lz4like::Lz4Like;

    #[test]
    fn roundtrip_text_and_random() {
        let codec = Miniflate::new();
        for data in [
            b"the deflate format remains everywhere, decades on ".repeat(400),
            (0..20_000u32).map(|i| (i.wrapping_mul(2654435761) >> 7) as u8).collect::<Vec<u8>>(),
            Vec::new(),
            b"x".to_vec(),
        ] {
            let compressed = codec.compress(&data).unwrap();
            assert_eq!(codec.decompress(&compressed).unwrap(), data);
        }
    }

    #[test]
    fn compresses_better_than_byte_level_codecs() {
        // Entropy coding should beat the byte-aligned LZ4-like codec on
        // text, mirroring zlib vs LZ4 in the paper's Figure 13.
        let text: Vec<u8> = b"In the town where I was born lived a man who sailed to sea. "
            .iter()
            .copied()
            .cycle()
            .take(400_000)
            .collect();
        let flate = Miniflate::new().compress(&text).unwrap();
        let lz4 = Lz4Like::new().compress(&text).unwrap();
        assert!(flate.len() < lz4.len(), "zlib-like {} should beat lz4-like {}", flate.len(), lz4.len());
    }

    #[test]
    fn achieves_deflate_class_ratio_on_structured_text() {
        let mut data = Vec::new();
        for i in 0..6000u32 {
            data.extend_from_slice(
                format!(
                    "<row id=\"{}\"><name>user{}</name><score>{}</score></row>\n",
                    i,
                    i % 500,
                    (i * 37) % 1000
                )
                .as_bytes(),
            );
        }
        let codec = Miniflate::new();
        let compressed = codec.compress(&data).unwrap();
        let ratio = data.len() as f64 / compressed.len() as f64;
        assert!(ratio > 3.0, "ratio {ratio} below the deflate class");
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn truncation_is_detected() {
        let codec = Miniflate::new();
        let data = b"truncate me ".repeat(200);
        let compressed = codec.compress(&data).unwrap();
        assert!(codec.decompress(&compressed[..compressed.len() / 3]).is_err());
        assert!(codec.decompress(&[]).is_err());
    }
}
