//! Zstd-like codec: deeper LZ77 matching plus an entropy-coded literal
//! stream over byte-framed sequences.
//!
//! Zstandard separates the LZ77 sequence structure (literal lengths, match
//! lengths, offsets) from the literal bytes and entropy-codes the literals
//! with a table-driven coder. This baseline mirrors that architecture with
//! the pieces available in this workspace: a 64 KB window with deeper hash
//! chains than the LZ4-like codec, byte-framed sequence descriptors, and a
//! canonical length-limited Huffman stage for the literal bytes. `DESIGN.md`
//! documents why this approximates Zstd's FSE stage: the goal in Figure 13
//! is a point between zlib (best ratio, slowest) and LZ4 (fastest, worst
//! ratio), which this construction reproduces.

use crate::{BaselineError, Codec, Result};
use gompresso_bitstream::{read_varint, write_varint, BitReader, BitWriter, ByteReader, ByteWriter};
use gompresso_huffman::{CanonicalCode, DecodeTable, EncodeTable, Histogram};
use gompresso_lz77::{
    decompress_block, decompress_block_into, Matcher, MatcherConfig, Sequence, SequenceBlock,
};

/// Maximum codeword length of the literal coder (keeps the decode LUT small
/// while costing almost nothing in ratio for byte alphabets).
const LITERAL_CWL: u8 = 11;

/// The Zstd-like baseline codec.
#[derive(Debug, Clone)]
pub struct ZstdLike {
    config: MatcherConfig,
}

impl Default for ZstdLike {
    fn default() -> Self {
        Self::new()
    }
}

impl ZstdLike {
    /// Creates the codec with Zstd-style matching parameters.
    pub fn new() -> Self {
        Self {
            // Minimum match of 4: our byte-framed sequence descriptors cost
            // ~4 bytes, so 3-byte matches would expand the stream (real Zstd
            // can afford them because FSE makes descriptors fractional-byte).
            config: MatcherConfig {
                window_size: 64 * 1024,
                min_match_len: 4,
                max_match_len: 258,
                chain_depth: 32,
                hash_bits: 16,
                ..MatcherConfig::default()
            },
        }
    }
}

impl Codec for ZstdLike {
    fn name(&self) -> &'static str {
        "zstd-like"
    }

    fn compress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let block = Matcher::new(self.config.clone()).compress(input);
        let mut w = ByteWriter::with_capacity(input.len() / 2 + 64);
        write_varint(&mut w, input.len() as u64);
        write_varint(&mut w, block.sequences.len() as u64);

        // Literal stream: Huffman-coded when it pays, stored raw otherwise
        // (Zstd makes the same raw-vs-compressed decision per block).
        if block.literals.is_empty() {
            w.write_u8(0); // no literals
        } else {
            let hist = Histogram::from_symbols(
                256,
                &block.literals.iter().map(|&b| u16::from(b)).collect::<Vec<u16>>(),
            );
            let code = CanonicalCode::from_histogram(&hist, LITERAL_CWL)?;
            let enc = EncodeTable::new(&code);
            let mut bits = BitWriter::with_capacity(block.literals.len());
            for &b in &block.literals {
                enc.encode(&mut bits, u16::from(b))?;
            }
            let coded = bits.finish();
            if coded.len() + 64 < block.literals.len() {
                w.write_u8(1); // huffman-coded literals
                code.serialize(&mut w);
                write_varint(&mut w, block.literals.len() as u64);
                write_varint(&mut w, coded.len() as u64);
                w.write_bytes(&coded);
            } else {
                w.write_u8(2); // raw literals
                write_varint(&mut w, block.literals.len() as u64);
                w.write_bytes(&block.literals);
            }
        }

        // Sequence descriptors, byte-framed.
        for seq in &block.sequences {
            write_varint(&mut w, u64::from(seq.literal_len));
            write_varint(&mut w, u64::from(seq.match_len));
            if seq.match_len > 0 {
                w.write_u16_le(seq.match_offset as u16);
            }
        }
        Ok(w.finish())
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        Ok(decompress_block(&Self::decode_frame(input)?)?)
    }

    fn decompress_into(&self, input: &[u8], out: &mut [u8]) -> Result<usize> {
        Ok(decompress_block_into(&Self::decode_frame(input)?, out)?)
    }
}

impl ZstdLike {
    /// Parses a frame back into its LZ77 sequence block.
    fn decode_frame(input: &[u8]) -> Result<SequenceBlock> {
        let mut r = ByteReader::new(input);
        let expected_len = read_varint(&mut r)? as usize;
        let n_sequences = read_varint(&mut r)? as usize;
        if expected_len > (1 << 31) || n_sequences > (1 << 28) {
            return Err(BaselineError::Malformed { reason: "implausible header counters" });
        }

        let literal_mode = r.read_u8()?;
        let literals: Vec<u8> = match literal_mode {
            0 => Vec::new(),
            1 => {
                let code = CanonicalCode::deserialize(&mut r)?;
                let dec = DecodeTable::new(&code)?;
                let n_literals = read_varint(&mut r)? as usize;
                let coded_len = read_varint(&mut r)? as usize;
                if n_literals > expected_len {
                    return Err(BaselineError::Malformed { reason: "literal count exceeds output size" });
                }
                let coded = r.read_bytes(coded_len)?;
                let mut bits = BitReader::new(coded);
                let mut literals = Vec::with_capacity(n_literals);
                for _ in 0..n_literals {
                    let sym = dec.decode(&mut bits)?;
                    if sym > 255 {
                        return Err(BaselineError::Malformed { reason: "literal symbol out of byte range" });
                    }
                    literals.push(sym as u8);
                }
                literals
            }
            2 => {
                let n_literals = read_varint(&mut r)? as usize;
                if n_literals > expected_len {
                    return Err(BaselineError::Malformed { reason: "literal count exceeds output size" });
                }
                r.read_bytes(n_literals)?.to_vec()
            }
            _ => return Err(BaselineError::Malformed { reason: "unknown literal stream mode" }),
        };

        let mut sequences = Vec::with_capacity(n_sequences);
        for _ in 0..n_sequences {
            let literal_len = read_varint(&mut r)?;
            let match_len = read_varint(&mut r)?;
            if literal_len > u64::from(u32::MAX) || match_len > u64::from(u32::MAX) {
                return Err(BaselineError::Malformed { reason: "sequence field out of range" });
            }
            let match_offset = if match_len > 0 { u32::from(r.read_u16_le()?) } else { 0 };
            sequences.push(Sequence {
                literal_len: literal_len as u32,
                match_offset,
                match_len: match_len as u32,
            });
        }

        Ok(SequenceBlock { sequences, literals, uncompressed_len: expected_len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lz4like::Lz4Like;
    use crate::miniflate::Miniflate;

    fn structured_text(len: usize) -> Vec<u8> {
        let mut data = Vec::with_capacity(len + 64);
        let mut i = 0u64;
        while data.len() < len {
            data.extend_from_slice(
                format!(
                    "timestamp={} level=INFO module=ingest msg=\"processed batch {}\"\n",
                    1_400_000_000 + i,
                    i % 997
                )
                .as_bytes(),
            );
            i += 1;
        }
        data.truncate(len);
        data
    }

    #[test]
    fn roundtrip_various_inputs() {
        let codec = ZstdLike::new();
        for data in [
            Vec::new(),
            b"z".to_vec(),
            structured_text(300_000),
            (0..30_000u32).map(|i| (i.wrapping_mul(2654435761) >> 5) as u8).collect::<Vec<u8>>(),
            vec![42u8; 50_000],
        ] {
            let compressed = codec.compress(&data).unwrap();
            assert_eq!(codec.decompress(&compressed).unwrap(), data);
        }
    }

    #[test]
    fn ratio_sits_between_lz4_and_deflate() {
        let data = structured_text(400_000);
        let zstd = ZstdLike::new().compress(&data).unwrap().len();
        let lz4 = Lz4Like::new().compress(&data).unwrap().len();
        let flate = Miniflate::new().compress(&data).unwrap().len();
        assert!(zstd < lz4, "zstd-like ({zstd}) should beat lz4-like ({lz4})");
        // The descriptors are byte-framed (unlike real Zstd's FSE), so on
        // this extremely repetitive corpus the bit-level codec keeps a
        // sizeable lead; the zstd-like ratio must still stay within 2× of it
        // and sit strictly between the byte-level and bit-level codecs.
        assert!((zstd as f64) < flate as f64 * 2.0, "zstd-like {zstd} vs zlib-like {flate}");
        assert!(zstd > flate, "zstd-like should not beat the full bit-level codec here");
    }

    #[test]
    fn incompressible_literals_fall_back_to_raw_mode() {
        let codec = ZstdLike::new();
        let data: Vec<u8> = (0..60_000u32).map(|i| (i.wrapping_mul(2654435761) >> 3) as u8).collect();
        let compressed = codec.compress(&data).unwrap();
        // Raw fallback keeps expansion negligible.
        assert!(compressed.len() < data.len() + data.len() / 64 + 64);
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn corrupted_headers_error_cleanly() {
        let codec = ZstdLike::new();
        let data = structured_text(10_000);
        let compressed = codec.compress(&data).unwrap();
        assert!(codec.decompress(&compressed[..3]).is_err());
        let mut bad = compressed.clone();
        bad[2] = 0x7F; // clobber the literal-mode/size area
        let _ = codec.decompress(&bad); // must not panic
    }
}
