//! Snappy-like byte-level codec.
//!
//! Follows Snappy's element framing: the stream is a sequence of elements,
//! each starting with a tag byte whose low two bits select the element kind
//! (literal run, copy with 1-byte offset, copy with 2-byte offset) and whose
//! high bits carry the length. Like Snappy it favours raw speed: 4-byte
//! minimum matches, a single-probe hash table, no entropy coding.

use crate::{BaselineError, Codec, Result};
use gompresso_bitstream::{read_varint, write_varint, ByteReader, ByteWriter};
use gompresso_lz77::{Matcher, MatcherConfig};

const TAG_LITERAL: u8 = 0b00;
const TAG_COPY1: u8 = 0b01;
const TAG_COPY2: u8 = 0b10;

/// The Snappy-like baseline codec.
#[derive(Debug, Clone)]
pub struct SnappyLike {
    config: MatcherConfig,
}

impl Default for SnappyLike {
    fn default() -> Self {
        Self::new()
    }
}

impl SnappyLike {
    /// Creates the codec with Snappy-style matching parameters.
    pub fn new() -> Self {
        Self {
            config: MatcherConfig {
                window_size: 32 * 1024,
                min_match_len: 4,
                max_match_len: 64,
                chain_depth: 1,
                hash_bits: 14,
                ..MatcherConfig::default()
            },
        }
    }

    fn emit_literals(out: &mut ByteWriter, literals: &[u8]) {
        let mut rest = literals;
        while !rest.is_empty() {
            // Up to 60 literal bytes inline in the tag; longer runs use a
            // one-byte extension (Snappy's 61-element form).
            let take = rest.len().min(255 + 61);
            if take <= 60 {
                out.write_u8(((take as u8 - 1) << 2) | TAG_LITERAL);
            } else {
                out.write_u8((60 << 2) | TAG_LITERAL);
                out.write_u8((take - 61) as u8);
            }
            out.write_bytes(&rest[..take]);
            rest = &rest[take..];
        }
    }

    fn emit_copy(out: &mut ByteWriter, offset: u32, len: u32) {
        let mut remaining = len;
        while remaining > 0 {
            // Copies encode 4..=64 bytes per element; longer matches are
            // split (leaving at least 4 for the final element).
            let mut take = remaining.min(64);
            if remaining - take > 0 && remaining - take < 4 {
                take = remaining - 4;
            }
            if offset < 2048 && (4..=11).contains(&take) {
                // 1-byte-offset form: 3 length bits, 3 high offset bits.
                let tag = (((take - 4) as u8) << 2) | (((offset >> 8) as u8) << 5) | TAG_COPY1;
                out.write_u8(tag);
                out.write_u8((offset & 0xFF) as u8);
            } else {
                let tag = (((take - 1) as u8) << 2) | TAG_COPY2;
                out.write_u8(tag);
                out.write_u16_le(offset as u16);
            }
            remaining -= take;
        }
    }
}

impl Codec for SnappyLike {
    fn name(&self) -> &'static str {
        "snappy-like"
    }

    fn compress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let block = Matcher::new(self.config.clone()).compress(input);
        let mut out = ByteWriter::with_capacity(input.len() / 2 + 16);
        write_varint(&mut out, input.len() as u64);
        let mut literal_cursor = 0usize;
        for seq in &block.sequences {
            let lit_end = literal_cursor + seq.literal_len as usize;
            if seq.literal_len > 0 {
                Self::emit_literals(&mut out, &block.literals[literal_cursor..lit_end]);
            }
            literal_cursor = lit_end;
            if seq.match_len > 0 {
                Self::emit_copy(&mut out, seq.match_offset, seq.match_len);
            }
        }
        Ok(out.finish())
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let expected_len = Self::frame_len(input)?;
        let mut out = vec![0u8; expected_len];
        let written = self.decompress_into(input, &mut out)?;
        debug_assert_eq!(written, expected_len);
        Ok(out)
    }

    fn decompress_into(&self, input: &[u8], out: &mut [u8]) -> Result<usize> {
        let mut r = ByteReader::new(input);
        let expected_len = read_varint(&mut r)? as usize;
        if expected_len > (1 << 31) {
            return Err(BaselineError::Malformed { reason: "declared length is implausibly large" });
        }
        if expected_len != out.len() {
            return Err(BaselineError::Malformed { reason: "block size disagrees with its output slot" });
        }
        let mut cursor = 0usize;
        while cursor < expected_len {
            let tag = r.read_u8()?;
            match tag & 0b11 {
                TAG_LITERAL => {
                    let field = usize::from(tag >> 2);
                    let len = if field < 60 {
                        field + 1
                    } else if field == 60 {
                        usize::from(r.read_u8()?) + 61
                    } else {
                        return Err(BaselineError::Malformed { reason: "unsupported literal tag form" });
                    };
                    let bytes = r.read_bytes(len)?;
                    if cursor + len > expected_len {
                        return Err(BaselineError::Malformed { reason: "output overruns declared length" });
                    }
                    out[cursor..cursor + len].copy_from_slice(bytes);
                    cursor += len;
                }
                TAG_COPY1 => {
                    let len = usize::from((tag >> 2) & 0b111) + 4;
                    let offset = (usize::from(tag >> 5) << 8) | usize::from(r.read_u8()?);
                    cursor = copy_within(out, cursor, expected_len, offset, len)?;
                }
                TAG_COPY2 => {
                    let len = usize::from(tag >> 2) + 1;
                    let offset = usize::from(r.read_u16_le()?);
                    cursor = copy_within(out, cursor, expected_len, offset, len)?;
                }
                _ => return Err(BaselineError::Malformed { reason: "reserved tag value" }),
            }
        }
        Ok(cursor)
    }
}

impl SnappyLike {
    /// Reads a frame's declared uncompressed length.
    fn frame_len(input: &[u8]) -> Result<usize> {
        let mut r = ByteReader::new(input);
        let expected_len = read_varint(&mut r)? as usize;
        if expected_len > (1 << 31) {
            return Err(BaselineError::Malformed { reason: "declared length is implausibly large" });
        }
        Ok(expected_len)
    }
}

/// Copies an overlapping-safe back-reference within the output cursor walk,
/// returning the advanced cursor.
fn copy_within(out: &mut [u8], cursor: usize, limit: usize, offset: usize, len: usize) -> Result<usize> {
    if offset == 0 || offset > cursor {
        return Err(BaselineError::Malformed { reason: "copy offset out of range" });
    }
    if cursor + len > limit {
        return Err(BaselineError::Malformed { reason: "output overruns declared length" });
    }
    let start = cursor - offset;
    for i in 0..len {
        out[cursor + i] = out[start + i];
    }
    Ok(cursor + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_inputs() {
        let codec = SnappyLike::new();
        let cases: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"a".to_vec(),
            b"snappy snappy snappy snappy snappy ".repeat(300),
            (0..10_000u32).map(|i| (i.wrapping_mul(2654435761) >> 11) as u8).collect(),
            vec![0u8; 100_000],
        ];
        for data in cases {
            let compressed = codec.compress(&data).unwrap();
            assert_eq!(codec.decompress(&compressed).unwrap(), data);
        }
    }

    #[test]
    fn long_literal_runs_use_extended_form() {
        let codec = SnappyLike::new();
        // 200 unique bytes force a literal run longer than 60.
        let data: Vec<u8> = (0..200u16).map(|i| (i ^ (i >> 3)) as u8).collect();
        let compressed = codec.compress(&data).unwrap();
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn compresses_repetitive_text_well() {
        let codec = SnappyLike::new();
        let data = b"row,col,value\n1,2,3.5\n1,3,4.5\n".repeat(1000);
        let compressed = codec.compress(&data).unwrap();
        assert!(compressed.len() < data.len() / 3, "only {} -> {}", data.len(), compressed.len());
    }

    #[test]
    fn corrupt_streams_error_cleanly() {
        let codec = SnappyLike::new();
        let data = b"corrupt corrupt corrupt".repeat(100);
        let mut compressed = codec.compress(&data).unwrap();
        // Point a copy before the start of the output.
        let n = compressed.len();
        compressed[n / 2] = 0xFF;
        let _ = codec.decompress(&compressed); // must not panic
        assert!(codec.decompress(&compressed[..4]).is_err() || codec.decompress(&compressed[..4]).is_ok());
        assert!(codec.decompress(&[0x03]).is_err());
    }
}
