//! Analytics-scan scenario from the paper's introduction: data is compressed
//! once at load time and repeatedly decompressed by read-heavy analytics
//! jobs, so decompression speed dominates.
//!
//! This example loads a synthetic Matrix Market edge list (the paper's
//! second dataset), compresses it once with both Gompresso modes, then runs
//! a small "query" — counting edges incident to low-numbered hub vertices —
//! several times, decompressing the data on every scan. It reports the
//! amortised scan cost and compares the back-reference resolution
//! strategies.
//!
//! Run with: `cargo run --release --example analytics_scan`

use gompresso::datasets::{DatasetGenerator, MatrixMarketGenerator};
use gompresso::{compress, decompress_with, CompressorConfig, DecompressorConfig, ResolutionStrategy};
use std::time::Instant;

const SCANS: usize = 3;

fn count_hub_edges(matrix_text: &[u8]) -> usize {
    // The "query": count edges whose column (second field) is a hub id.
    matrix_text
        .split(|&b| b == b'\n')
        .filter(|line| !line.starts_with(b"%"))
        .filter_map(|line| {
            let mut fields = line.split(|&b| b == b' ');
            let _row = fields.next()?;
            let col = fields.next()?;
            std::str::from_utf8(col).ok()?.parse::<u64>().ok()
        })
        .filter(|&col| col < 1000)
        .count()
}

fn main() {
    let data = MatrixMarketGenerator::new(11).generate(8 * 1024 * 1024);

    for (label, config) in
        [("Gompresso/Bit+DE", CompressorConfig::bit_de()), ("Gompresso/Byte+DE", CompressorConfig::byte_de())]
    {
        let compressed = compress(&data, &config).expect("compression failed");
        println!(
            "{label}: stored {} MB as {:.2} MB (ratio {:.2}:1)",
            data.len() / (1024 * 1024),
            compressed.stats.compressed_size as f64 / (1024.0 * 1024.0),
            compressed.stats.ratio()
        );

        for strategy in ResolutionStrategy::ALL {
            let dconf = DecompressorConfig { strategy: strategy.into(), ..DecompressorConfig::default() };
            let start = Instant::now();
            let mut hits = 0usize;
            for _ in 0..SCANS {
                let (scan, _report) =
                    decompress_with(&compressed.file, &dconf).expect("decompression failed");
                hits = count_hub_edges(&scan);
            }
            let per_scan = start.elapsed().as_secs_f64() / SCANS as f64;
            println!(
                "  strategy {:>3}: {SCANS} scans, {:.1} ms/scan on the host ({:.2} GB/s), query hit count {}",
                strategy.short_name(),
                per_scan * 1e3,
                data.len() as f64 / per_scan / 1e9,
                hits
            );
        }
    }
}
