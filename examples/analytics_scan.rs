//! Analytics-scan scenario from the paper's introduction: data is compressed
//! once at load time and repeatedly decompressed by read-heavy analytics
//! jobs, so decompression speed dominates.
//!
//! This example is now a thin driver over the library's scan engine
//! (`gompresso::scan_filter_count` on top of `ArchiveReader`): a synthetic
//! Matrix Market edge list is compressed once into a seekable stream
//! archive, then a small "query" — counting edges incident to low-numbered
//! hub vertices — runs several times directly against the compressed bytes.
//! Blocks stream through the scan in bounded batches and decode in
//! parallel; the whole file is never materialized.
//!
//! Run with: `cargo run --release --example analytics_scan`

use gompresso::datasets::{DatasetGenerator, MatrixMarketGenerator};
use gompresso::{scan_filter_count, ArchiveReader, CompressorConfig, ScanOptions, StreamCompressor};
use std::io::Cursor;
use std::time::Instant;

const SCANS: usize = 3;

/// The "query" predicate: an edge line whose column (second field) is a
/// hub id. Comment lines (`%…`) never match.
fn is_hub_edge(line: &[u8]) -> bool {
    if line.starts_with(b"%") {
        return false;
    }
    let mut fields = line.split(|&b| b == b' ');
    let (Some(_row), Some(col)) = (fields.next(), fields.next()) else {
        return false;
    };
    matches!(std::str::from_utf8(col).ok().and_then(|c| c.parse::<u64>().ok()), Some(col) if col < 1000)
}

fn main() {
    let data = MatrixMarketGenerator::new(11).generate(8 * 1024 * 1024);

    for (label, config) in
        [("Gompresso/Bit+DE", CompressorConfig::bit_de()), ("Gompresso/Byte+DE", CompressorConfig::byte_de())]
    {
        // Compress once at "load time" into a seekable stream archive.
        let mut archive = Vec::new();
        let stats = StreamCompressor::new(config)
            .expect("valid config")
            .compress_seekable(Cursor::new(&data), Cursor::new(&mut archive))
            .expect("compression failed");
        println!(
            "{label}: stored {} MB as {:.2} MB (ratio {:.2}:1)",
            data.len() / (1024 * 1024),
            stats.compressed_size as f64 / (1024.0 * 1024.0),
            stats.uncompressed_size as f64 / stats.compressed_size as f64
        );

        // Scan it repeatedly, straight off the compressed representation.
        let mut reader = ArchiveReader::open(Cursor::new(&archive)).expect("open archive");
        let opts = ScanOptions::default();
        let start = Instant::now();
        let mut hits = 0u64;
        for _ in 0..SCANS {
            hits = scan_filter_count(&mut reader, &opts, is_hub_edge).expect("scan failed");
        }
        let per_scan = start.elapsed().as_secs_f64() / SCANS as f64;
        println!(
            "  {SCANS} scans, {:.1} ms/scan on the host ({:.2} GB/s), query hit count {hits}, {} blocks/scan",
            per_scan * 1e3,
            data.len() as f64 / per_scan / 1e9,
            reader.blocks_decoded() / SCANS as u64,
        );
    }
}
