//! Strategy and parameter tuning walk-through: shows how nesting depth,
//! Dependency Elimination and block size interact — the knobs Sections IV
//! and V of the paper explore.
//!
//! Run with: `cargo run --release --example strategy_tuning`

use gompresso::datasets::{DatasetGenerator, NestingGenerator, WikipediaGenerator};
use gompresso::{compress, decompress_with, CompressorConfig, DecompressorConfig, ResolutionStrategy};

const SIZE: usize = 4 * 1024 * 1024;

fn main() {
    println!("1) MRR rounds versus artificial nesting depth (paper Fig. 9c)\n");
    println!("   depth   mean MRR rounds   est. GPU time");
    for depth in [1u32, 2, 4, 8, 16, 32] {
        let data = NestingGenerator::new(depth).generate(SIZE);
        let file = compress(&data, &CompressorConfig::byte()).expect("compress");
        let config = DecompressorConfig { strategy: ResolutionStrategy::MultiRound, ..Default::default() };
        let (out, report) = decompress_with(&file.file, &config).expect("decompress");
        assert_eq!(out, data);
        println!(
            "   {depth:>5}   {:>15.2}   {:>10.2} ms",
            report.mrr.mean_rounds(),
            report.gpu.device_only_s() * 1e3
        );
    }

    println!("\n2) What Dependency Elimination buys at decompression time (paper Fig. 9a/11)\n");
    let data = WikipediaGenerator::new(3).generate(SIZE);
    let plain = compress(&data, &CompressorConfig::byte()).expect("compress");
    let de = compress(&data, &CompressorConfig::byte_de()).expect("compress");
    println!(
        "   ratio without DE: {:.3}   with DE: {:.3}   (degradation {:.1} %)",
        plain.stats.ratio(),
        de.stats.ratio(),
        (1.0 - de.stats.ratio() / plain.stats.ratio()) * 100.0
    );
    for (label, file, strategy) in [
        ("SC  on plain file", &plain.file, ResolutionStrategy::SequentialCopy),
        ("MRR on plain file", &plain.file, ResolutionStrategy::MultiRound),
        ("DE  on DE file   ", &de.file, ResolutionStrategy::DependencyEliminated),
    ] {
        let config = DecompressorConfig { strategy, ..Default::default() };
        let (out, report) = decompress_with(file, &config).expect("decompress");
        assert_eq!(out, data);
        println!(
            "   {label}: est. GPU {:.2} GB/s (device only), warp utilization {:.0} %",
            report.gpu_bandwidth_no_pcie() / 1e9,
            report.lz77_counters.totals.warp_utilization() * 100.0
        );
    }

    println!("\n3) Block-size trade-off for Gompresso/Bit (paper Fig. 12)\n");
    println!("   block    ratio    est. GPU GB/s (In/Out)");
    for block_kb in [32usize, 64, 128, 256] {
        let config = CompressorConfig { block_size: block_kb * 1024, ..CompressorConfig::bit_de() };
        let out = compress(&data, &config).expect("compress");
        let (restored, report) =
            decompress_with(&out.file, &DecompressorConfig::default()).expect("decompress");
        assert_eq!(restored, data);
        println!(
            "   {block_kb:>4} KB  {:>6.3}   {:>8.2}",
            out.stats.ratio(),
            report.gpu_bandwidth_in_out() / 1e9
        );
    }
}
