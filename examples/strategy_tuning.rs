//! Strategy and parameter tuning walk-through: shows how nesting depth,
//! Dependency Elimination, block size and per-block adaptive planning
//! interact — the knobs Sections IV and V of the paper explore.
//!
//! Run with: `cargo run --release --example strategy_tuning`

use gompresso::datasets::{DatasetGenerator, NestingGenerator, WikipediaGenerator};
use gompresso::{
    compress, decompress_with, CompressedOutput, CompressorConfig, DecompressorConfig, EncodingMode,
    ResolutionStrategy, StrategySelection,
};

const SIZE: usize = 4 * 1024 * 1024;

/// Per-block plan histogram of a compressed file: how many blocks landed on
/// each (mode, strategy, DE) combination.
fn plan_histogram(out: &CompressedOutput) -> Vec<(String, usize)> {
    let mut counts: Vec<(String, usize)> = Vec::new();
    for config in &out.file.header.block_configs {
        let mode = match config.mode {
            EncodingMode::Bit => "bit",
            EncodingMode::Byte => "byte",
        };
        let de = if config.dependency_elimination { "+de" } else { "" };
        let label = format!("{mode}/{}{de}", config.strategy.short_name());
        match counts.iter_mut().find(|(k, _)| *k == label) {
            Some((_, n)) => *n += 1,
            None => counts.push((label, 1)),
        }
    }
    counts
}

fn main() {
    println!("1) MRR rounds versus artificial nesting depth (paper Fig. 9c)\n");
    println!("   depth   mean MRR rounds   est. GPU time");
    for depth in [1u32, 2, 4, 8, 16, 32] {
        let data = NestingGenerator::new(depth).generate(SIZE);
        let file = compress(&data, &CompressorConfig::byte()).expect("compress");
        let config = DecompressorConfig {
            strategy: StrategySelection::Force(ResolutionStrategy::MultiRound),
            ..Default::default()
        };
        let (out, report) = decompress_with(&file.file, &config).expect("decompress");
        assert_eq!(out, data);
        println!(
            "   {depth:>5}   {:>15.2}   {:>10.2} ms",
            report.mrr.mean_rounds(),
            report.gpu.device_only_s() * 1e3
        );
    }

    println!("\n2) What Dependency Elimination buys at decompression time (paper Fig. 9a/11)\n");
    let data = WikipediaGenerator::new(3).generate(SIZE);
    let plain = compress(&data, &CompressorConfig::byte()).expect("compress");
    let de = compress(&data, &CompressorConfig::byte_de()).expect("compress");
    println!(
        "   ratio without DE: {:.3}   with DE: {:.3}   (degradation {:.1} %)",
        plain.stats.ratio(),
        de.stats.ratio(),
        (1.0 - de.stats.ratio() / plain.stats.ratio()) * 100.0
    );
    for (label, file, strategy) in [
        ("SC  on plain file", &plain.file, ResolutionStrategy::SequentialCopy),
        ("MRR on plain file", &plain.file, ResolutionStrategy::MultiRound),
        ("DE  on DE file   ", &de.file, ResolutionStrategy::DependencyEliminated),
    ] {
        let config = DecompressorConfig { strategy: strategy.into(), ..Default::default() };
        let (out, report) = decompress_with(file, &config).expect("decompress");
        assert_eq!(out, data);
        println!(
            "   {label}: est. GPU {:.2} GB/s (device only), warp utilization {:.0} %",
            report.gpu_bandwidth_no_pcie() / 1e9,
            report.lz77_counters.totals.warp_utilization() * 100.0
        );
    }

    println!("\n3) Block-size trade-off for Gompresso/Bit (paper Fig. 12)\n");
    println!("   block    ratio    compress GB/s    est. GPU GB/s (In/Out)");
    for block_kb in [32usize, 64, 128, 256] {
        let config = CompressorConfig { block_size: block_kb * 1024, ..CompressorConfig::bit_de() };
        let out = compress(&data, &config).expect("compress");
        let (restored, report) =
            decompress_with(&out.file, &DecompressorConfig::default()).expect("decompress");
        assert_eq!(restored, data);
        println!(
            "   {block_kb:>4} KB  {:>6.3}   {:>13.3}   {:>8.2}",
            out.stats.ratio(),
            out.stats.speed_bytes_per_sec() / 1e9,
            report.gpu_bandwidth_in_out() / 1e9
        );
    }

    println!("\n4) Adaptive per-block planning versus the static grid (v3 container)\n");
    // Half compressible text, half incompressible noise: no single static
    // point of the {bit,byte} x {DE,MRR} grid wins on both halves, but the
    // auto planner picks per block.
    let mut mixed = WikipediaGenerator::new(7).generate(SIZE / 2);
    let mut x = 0x243F_6A88_85A3_08D3u64;
    mixed.extend((0..SIZE / 2).map(|_| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 24) as u8
    }));

    println!("   config    ratio    compress GB/s    est. GPU GB/s (In/Out)");
    let mut results: Vec<(&str, CompressedOutput)> = Vec::new();
    for (label, config) in [
        ("bit   ", CompressorConfig::bit()),
        ("bit+de", CompressorConfig::bit_de()),
        ("byte  ", CompressorConfig::byte()),
        ("byt+de", CompressorConfig::byte_de()),
        ("auto  ", CompressorConfig::auto()),
    ] {
        let out = compress(&mixed, &config).expect("compress");
        let (restored, report) =
            decompress_with(&out.file, &DecompressorConfig::default()).expect("decompress");
        assert_eq!(restored, mixed);
        println!(
            "   {label}   {:>6.3}   {:>13.3}   {:>8.2}",
            out.stats.ratio(),
            out.stats.speed_bytes_per_sec() / 1e9,
            report.gpu_bandwidth_in_out() / 1e9
        );
        results.push((label, out));
    }

    let auto = &results.last().expect("auto row present").1;
    println!("\n   auto per-block plan histogram ({} blocks):", auto.file.header.block_count());
    for (label, n) in plan_histogram(auto) {
        println!("     {label:<10} {n:>4} blocks");
    }
}
