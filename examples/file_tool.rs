//! A gzip-style command-line tool built on the Gompresso public API:
//! compresses or decompresses real files on disk using the paper's file
//! format.
//!
//! ```text
//! cargo run --release --example file_tool -- compress   <input> <output.gpso> [bit|byte] [--de]
//! cargo run --release --example file_tool -- decompress <input.gpso> <output> [sc|mrr|de]
//! cargo run --release --example file_tool -- info       <input.gpso>
//! ```
//!
//! With no arguments it runs a self-contained demo on a temporary file.

use gompresso::{
    compress, decompress_with, CompressedFile, CompressorConfig, DecompressorConfig, EncodingMode,
    ResolutionStrategy,
};
use std::fs;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!("  file_tool compress   <input> <output.gpso> [bit|byte] [--de]");
    eprintln!("  file_tool decompress <input.gpso> <output> [sc|mrr|de]");
    eprintln!("  file_tool info       <input.gpso>");
    exit(2)
}

fn cmd_compress(input: &str, output: &str, mode: &str, de: bool) {
    let data = fs::read(input).unwrap_or_else(|e| {
        eprintln!("cannot read {input}: {e}");
        exit(1)
    });
    let mut config = match mode {
        "byte" => CompressorConfig::byte(),
        _ => CompressorConfig::bit(),
    };
    config.dependency_elimination = de;
    let out = compress(&data, &config).unwrap_or_else(|e| {
        eprintln!("compression failed: {e}");
        exit(1)
    });
    fs::write(output, out.file.serialize()).expect("cannot write output");
    println!(
        "{input}: {} -> {} bytes (ratio {:.2}:1, {} blocks, {:.1} MB/s)",
        out.stats.uncompressed_size,
        out.stats.compressed_size,
        out.stats.ratio(),
        out.stats.blocks,
        out.stats.speed_bytes_per_sec() / 1e6
    );
}

fn cmd_decompress(input: &str, output: &str, strategy: &str) {
    let bytes = fs::read(input).unwrap_or_else(|e| {
        eprintln!("cannot read {input}: {e}");
        exit(1)
    });
    let file = CompressedFile::deserialize(&bytes).unwrap_or_else(|e| {
        eprintln!("{input} is not a valid Gompresso file: {e}");
        exit(1)
    });
    let strategy = match strategy {
        "sc" => ResolutionStrategy::SequentialCopy,
        "mrr" => ResolutionStrategy::MultiRound,
        _ => ResolutionStrategy::DependencyEliminated,
    };
    let config = DecompressorConfig { strategy, ..DecompressorConfig::default() };
    let (data, report) = decompress_with(&file, &config).unwrap_or_else(|e| {
        eprintln!("decompression failed: {e}");
        exit(1)
    });
    fs::write(output, &data).expect("cannot write output");
    println!(
        "{input}: {} bytes restored with {} in {:.1} ms (host {:.2} GB/s, simulated K40 {:.2} GB/s incl. PCIe)",
        data.len(),
        strategy.short_name(),
        report.wall_seconds * 1e3,
        report.host_bandwidth() / 1e9,
        report.gpu_bandwidth_in_out() / 1e9
    );
}

fn cmd_info(input: &str) {
    let bytes = fs::read(input).unwrap_or_else(|e| {
        eprintln!("cannot read {input}: {e}");
        exit(1)
    });
    let file = CompressedFile::deserialize(&bytes).unwrap_or_else(|e| {
        eprintln!("{input} is not a valid Gompresso file: {e}");
        exit(1)
    });
    let h = &file.header;
    println!("Gompresso file: {input}");
    println!(
        "  mode                 : {}",
        if h.mode == EncodingMode::Bit { "bit (Huffman)" } else { "byte (LZ4-style)" }
    );
    println!("  uncompressed size    : {} bytes", h.uncompressed_size);
    println!("  block size           : {} KB ({} blocks)", h.block_size / 1024, h.block_count());
    println!("  window / max match   : {} / {} bytes", h.window_size, h.max_match_len);
    println!("  sequences per subblk : {}", h.sequences_per_sub_block);
    println!("  max codeword length  : {} bits", h.max_codeword_len);
    println!("  compression ratio    : {:.3}:1", file.compression_ratio());
}

fn demo() {
    println!("no arguments given — running the self-contained demo\n");
    let dir = std::env::temp_dir().join("gompresso_file_tool_demo");
    fs::create_dir_all(&dir).expect("cannot create temp dir");
    let input = dir.join("demo.xml");
    let archive = dir.join("demo.gpso");
    let restored = dir.join("demo.out");
    let data: Vec<u8> = b"<entry><k>alpha</k><v>1</v></entry>\n".repeat(20_000);
    fs::write(&input, &data).expect("cannot write demo input");

    cmd_compress(input.to_str().unwrap(), archive.to_str().unwrap(), "bit", true);
    cmd_info(archive.to_str().unwrap());
    cmd_decompress(archive.to_str().unwrap(), restored.to_str().unwrap(), "de");
    assert_eq!(fs::read(&restored).unwrap(), data);
    println!("\ndemo round trip verified under {}", dir.display());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        None => demo(),
        Some("compress") if args.len() >= 4 => {
            let mode = args.get(4).map(String::as_str).unwrap_or("bit");
            let de = args.iter().any(|a| a == "--de");
            cmd_compress(&args[2], &args[3], mode, de);
        }
        Some("decompress") if args.len() >= 4 => {
            let strategy = args.get(4).map(String::as_str).unwrap_or("de");
            cmd_decompress(&args[2], &args[3], strategy);
        }
        Some("info") if args.len() >= 3 => cmd_info(&args[2]),
        _ => usage(),
    }
}
