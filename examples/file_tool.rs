//! A gzip-style command-line tool built on the Gompresso public API:
//! compresses or decompresses real files on disk using the paper's file
//! format.
//!
//! ```text
//! cargo run --release --example file_tool -- compress   <input> <output.gpso> [bit|byte|auto] [--de]
//! cargo run --release --example file_tool -- decompress <input.gpso> <output> [planned|sc|mrr|de]
//! cargo run --release --example file_tool -- info       <input.gpso>
//! ```
//!
//! With no arguments it runs a self-contained demo on a temporary file.

use gompresso::{
    compress, decompress_salvage, decompress_with, ArchiveFormat, ArchiveReader, CompressedFile,
    CompressorConfig, DecompressorConfig, EncodingMode, RecoveryReport, ResolutionStrategy,
    StrategySelection, StreamDecompressor,
};
use std::fs;
use std::io::{Cursor, Write};
use std::ops::Range;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!("  file_tool compress   <input> <output.gpso> [bit|byte|auto] [--de]");
    eprintln!("  file_tool decompress <input.gpso> <output> [planned|sc|mrr|de]");
    eprintln!("  file_tool cat        <input.gpso|input.gpsos> <output|-> [--range a..b]");
    eprintln!("  file_tool info       <input.gpso|input.gpsos>");
    eprintln!("  file_tool index      <input.gpso|input.gpsos>");
    eprintln!("  file_tool verify     <input.gpso|input.gpsos>");
    eprintln!("  file_tool salvage    <input.gpso|input.gpsos> <output>");
    eprintln!("  file_tool client <addr> compress   <input> <output.gpsos> [bit|byte|auto] [--de]");
    eprintln!("  file_tool client <addr> decompress <input.gpsos> <output>");
    eprintln!("  file_tool client <addr> verify     <input.gpsos>");
    eprintln!("  file_tool client <addr> stats");
    eprintln!("  file_tool client <addr> shutdown");
    eprintln!();
    eprintln!("exit codes: 0 = ok, 1 = corruption found, 2 = usage or I/O error");
    exit(2)
}

fn cmd_compress(input: &str, output: &str, mode: &str, de: bool) {
    let data = fs::read(input).unwrap_or_else(|e| {
        eprintln!("cannot read {input}: {e}");
        exit(1)
    });
    let mut config = match mode {
        "bit" => CompressorConfig::bit(),
        "byte" => CompressorConfig::byte(),
        "auto" => CompressorConfig::auto(),
        other => {
            eprintln!("unknown mode {other:?}: expected bit, byte or auto");
            exit(2)
        }
    };
    if mode != "auto" {
        config.dependency_elimination = de;
    }
    let out = compress(&data, &config).unwrap_or_else(|e| {
        eprintln!("compression failed: {e}");
        exit(1)
    });
    fs::write(output, out.file.serialize()).expect("cannot write output");
    println!(
        "{input}: {} -> {} bytes (ratio {:.2}:1, {} blocks) in {:.1} ms ({:.3} GB/s)",
        out.stats.uncompressed_size,
        out.stats.compressed_size,
        out.stats.ratio(),
        out.stats.blocks,
        out.stats.wall_seconds * 1e3,
        out.stats.speed_bytes_per_sec() / 1e9
    );
}

fn cmd_decompress(input: &str, output: &str, strategy: &str) {
    let bytes = fs::read(input).unwrap_or_else(|e| {
        eprintln!("cannot read {input}: {e}");
        exit(1)
    });
    let file = CompressedFile::deserialize(&bytes).unwrap_or_else(|e| {
        eprintln!("{input} is not a valid Gompresso file: {e}");
        exit(1)
    });
    // Default: follow each block's recorded strategy; the explicit names
    // force one strategy onto every block (the paper's uniform runs).
    let strategy = match strategy {
        "planned" => StrategySelection::Planned,
        "sc" => StrategySelection::Force(ResolutionStrategy::SequentialCopy),
        "mrr" => StrategySelection::Force(ResolutionStrategy::MultiRound),
        "de" => StrategySelection::Force(ResolutionStrategy::DependencyEliminated),
        other => {
            eprintln!("unknown strategy {other:?}: expected planned, sc, mrr or de");
            exit(2)
        }
    };
    let config = DecompressorConfig { strategy, ..DecompressorConfig::default() };
    let (data, report) = decompress_with(&file, &config).unwrap_or_else(|e| {
        eprintln!("decompression failed: {e}");
        exit(1)
    });
    fs::write(output, &data).expect("cannot write output");
    println!(
        "{input}: {} bytes restored with {} in {:.1} ms (host {:.2} GB/s, simulated K40 {:.2} GB/s incl. PCIe)",
        data.len(),
        strategy.describe(),
        report.wall_seconds * 1e3,
        report.host_bandwidth() / 1e9,
        report.gpu_bandwidth_in_out() / 1e9
    );
}

fn mode_name(mode: EncodingMode) -> &'static str {
    match mode {
        EncodingMode::Bit => "bit (Huffman)",
        EncodingMode::Byte => "byte (LZ4-style)",
    }
}

/// Opens `input` through the random-access reader (either layout) or
/// exits: 2 if unreadable, 1 if not a valid archive.
fn open_archive(input: &str) -> ArchiveReader<Cursor<Vec<u8>>> {
    let bytes = read_or_exit(input);
    ArchiveReader::open(Cursor::new(bytes)).unwrap_or_else(|e| {
        eprintln!("{input} is not a valid Gompresso archive: {e}");
        exit(1)
    })
}

/// Parses `a..b` (either side optional: `100..`, `..4096`, `..`).
fn parse_range(spec: &str) -> Range<u64> {
    let bad = || -> ! {
        eprintln!("invalid range {spec:?}: expected <start>..<end> with either side optional");
        exit(2)
    };
    let Some((start, end)) = spec.split_once("..") else { bad() };
    let parse = |s: &str, default| if s.is_empty() { default } else { s.parse().unwrap_or_else(|_| bad()) };
    parse(start, 0)..parse(end, u64::MAX)
}

/// Decodes an uncompressed byte range straight out of the archive — only
/// the overlapping blocks are read and decoded — and writes it to a file
/// or stdout (`-`).
fn cmd_cat(input: &str, output: &str, range: Option<&str>) {
    let mut reader = open_archive(input);
    let range = range.map(parse_range).unwrap_or(0..u64::MAX);
    let data = reader.decompress_range(range.clone()).unwrap_or_else(|e| {
        eprintln!("cannot decode {input} range {}..{}: {e}", range.start, range.end);
        exit(1)
    });
    if output == "-" {
        std::io::stdout().write_all(&data).unwrap_or_else(|e| {
            eprintln!("cannot write to stdout: {e}");
            exit(2)
        });
    } else {
        fs::write(output, &data).unwrap_or_else(|e| {
            eprintln!("cannot write {output}: {e}");
            exit(2)
        });
    }
    eprintln!(
        "{input}: {} bytes from {} of {} blocks",
        data.len(),
        reader.blocks_decoded(),
        reader.index().block_count()
    );
}

fn short_mode(mode: EncodingMode) -> &'static str {
    match mode {
        EncodingMode::Bit => "bit",
        EncodingMode::Byte => "byte",
    }
}

fn print_block_table(reader: &ArchiveReader<Cursor<Vec<u8>>>) {
    let index = reader.index();
    println!(
        "  {:>5}  {:>12}  {:>10}  {:>12}  {:>10}  codec",
        "block", "comp.off", "comp.size", "uncomp.off", "uncomp.size"
    );
    for (i, entry) in index.entries().iter().enumerate() {
        println!(
            "  {:>5}  {:>12}  {:>10}  {:>12}  {:>10}  {}/{}{}",
            i,
            entry.compressed_offset,
            entry.compressed_size,
            entry.uncompressed_offset,
            entry.uncompressed_size,
            short_mode(entry.config.mode),
            entry.config.strategy.short_name(),
            if entry.checksum.is_some() { " +crc" } else { "" },
        );
    }
}

/// `info` for stream archives (and anything else the container parser
/// rejects): header summary plus the per-block seek table.
fn info_via_index(input: &str) {
    let reader = open_archive(input);
    let index = reader.index();
    let kind = match reader.format() {
        ArchiveFormat::Container => "in-memory container",
        ArchiveFormat::Stream => "stream container",
    };
    println!("Gompresso archive: {input} ({kind})");
    println!("  uncompressed size    : {} bytes", index.uncompressed_size());
    println!("  block size           : {} KB ({} blocks)", index.block_size() / 1024, index.block_count());
    println!("  window / max match   : {} / {} bytes", index.window_size(), index.max_match_len());
    println!("  block checksums      : {}", if index.checksummed() { "yes" } else { "no" });
    println!("  block index:");
    print_block_table(&reader);
}

fn cmd_index(input: &str) {
    let reader = open_archive(input);
    let kind = match reader.format() {
        ArchiveFormat::Container => "container",
        ArchiveFormat::Stream => "stream",
    };
    println!(
        "{input}: {kind}, {} blocks, {} uncompressed bytes{}",
        reader.index().block_count(),
        reader.uncompressed_size(),
        if reader.index().checksummed() { ", per-block checksums" } else { "" },
    );
    print_block_table(&reader);
}

fn cmd_info(input: &str) {
    let bytes = fs::read(input).unwrap_or_else(|e| {
        eprintln!("cannot read {input}: {e}");
        exit(1)
    });
    if looks_like_stream(input) {
        return info_via_index(input);
    }
    let file = match CompressedFile::deserialize(&bytes) {
        Ok(file) => file,
        // Not an in-memory container — maybe a renamed stream archive; the
        // index-based path sniffs the layout itself.
        Err(_) => return info_via_index(input),
    };
    let h = &file.header;
    println!("Gompresso file: {input}");
    match h.uniform_config() {
        Some(config) => {
            println!("  mode                 : {} (uniform)", mode_name(config.mode));
            println!("  strategy             : {}", config.strategy.short_name());
            println!("  sequences per subblk : {}", config.sequences_per_sub_block);
            println!("  max codeword length  : {} bits", config.max_codeword_len);
        }
        None => {
            println!("  mode                 : mixed per block");
            // Histogram of the per-block plans actually recorded.
            let mut counts: Vec<((EncodingMode, ResolutionStrategy), usize)> = Vec::new();
            for config in &h.block_configs {
                let key = (config.mode, config.strategy);
                match counts.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((key, 1)),
                }
            }
            for ((mode, strategy), n) in counts {
                println!("    {:<19}: {} blocks ({})", mode_name(mode), n, strategy.short_name());
            }
        }
    }
    println!("  uncompressed size    : {} bytes", h.uncompressed_size);
    println!("  block size           : {} KB ({} blocks)", h.block_size / 1024, h.block_count());
    println!("  window / max match   : {} / {} bytes", h.window_size, h.max_match_len);
    println!("  compression ratio    : {:.3}:1", file.compression_ratio());
}

/// Reads `input` or exits 2 (I/O problems are not corruption).
fn read_or_exit(input: &str) -> Vec<u8> {
    fs::read(input).unwrap_or_else(|e| {
        eprintln!("cannot read {input}: {e}");
        exit(2)
    })
}

/// Whether to try the streaming format first (`.gpsos` extension).
fn looks_like_stream(input: &str) -> bool {
    input.ends_with(".gpsos")
}

/// Checks every integrity layer of `input` without writing any output.
/// Exit 0 when the archive decodes fully with checksums verified, 1 when
/// any corruption is found, 2 on I/O or usage errors.
fn cmd_verify(input: &str) {
    let bytes = read_or_exit(input);
    let config = DecompressorConfig::default(); // checksums on

    let container = || -> Result<usize, gompresso::GompressoError> {
        let file = CompressedFile::deserialize(&bytes).map_err(gompresso::GompressoError::Format)?;
        decompress_with(&file, &config).map(|(data, _)| data.len())
    };
    let stream = || -> Result<usize, gompresso::GompressoError> {
        let mut sink = std::io::sink();
        StreamDecompressor::new(config.clone())
            .decompress(bytes.as_slice(), &mut sink)
            .map(|stats| stats.uncompressed_size as usize)
    };

    // Try the format the extension suggests first; fall back to the other
    // so a renamed archive still verifies.
    let (first, second): (&dyn Fn() -> _, &dyn Fn() -> _) =
        if looks_like_stream(input) { (&stream, &container) } else { (&container, &stream) };
    match first().or_else(|first_err| second().map_err(|_| first_err)) {
        Ok(size) => {
            println!("{input}: OK ({size} bytes, all checksums verified)");
        }
        Err(e) => {
            eprintln!("{input}: CORRUPT: {e}");
            exit(1)
        }
    }
}

fn print_recovery(input: &str, report: &RecoveryReport) {
    println!(
        "{input}: recovered {}/{} blocks ({} bytes), lost {} blocks ({} bytes{})",
        report.blocks_recovered,
        report.blocks_recovered + report.blocks_lost,
        report.bytes_recovered,
        report.blocks_lost,
        report.bytes_lost,
        if report.lost_sizes_exact { "" } else { ", sizes approximate" },
    );
    if !report.head_intact {
        println!("  note: archive head checksum did not verify");
    }
    if !report.trailer_intact {
        println!(
            "  note: trailer missing or damaged{}",
            if report.resyncs > 0 { "; resynchronized by scanning" } else { "" }
        );
    }
    for block in report.blocks.iter().filter(|b| !b.status.is_recovered()) {
        if let gompresso::BlockStatus::Lost(e) = &block.status {
            println!(
                "  lost block {} (input bytes {}..{}, output bytes {}..{} zero-filled): {e}",
                block.block,
                block.input_range.0,
                block.input_range.1,
                block.output_range.0,
                block.output_range.1
            );
        }
    }
}

/// Best-effort recovery of a damaged archive into `output`. Exit 0 when
/// everything was recovered, 1 when corruption was found (recovered output
/// is still written), 2 on I/O or usage errors.
fn cmd_salvage(input: &str, output: &str) {
    let bytes = read_or_exit(input);
    let config = DecompressorConfig::default();

    let container = || decompress_salvage(&bytes, &config);
    let stream = || StreamDecompressor::new(config.clone()).salvage_bytes(&bytes);
    let result = if looks_like_stream(input) {
        stream().or_else(|e| container().map_err(|_| e))
    } else {
        container().or_else(|e| stream().map_err(|_| e))
    };

    match result {
        Ok((data, report)) => {
            fs::write(output, &data).unwrap_or_else(|e| {
                eprintln!("cannot write {output}: {e}");
                exit(2)
            });
            print_recovery(input, &report);
            if !(report.is_complete() && report.head_intact && report.trailer_intact) {
                exit(1)
            }
        }
        Err(e) => {
            eprintln!("{input}: unsalvageable (cannot even parse the archive head): {e}");
            exit(1)
        }
    }
}

/// Converts a client failure into the tool's exit-code convention:
/// corrupt input is 1, everything else (transport, protocol, usage) is 2.
fn client_exit(context: &str, e: gompresso::service::ClientError) -> ! {
    eprintln!("{context}: {e}");
    exit(if e.is_corruption() { 1 } else { 2 })
}

/// Runs one daemon request with Busy-retries (reconnecting each attempt,
/// sleeping the server's backoff hint between them).
fn client_call<T>(
    addr: &str,
    context: &str,
    job: impl FnMut(&mut gompresso::service::Client) -> Result<T, gompresso::service::ClientError>,
) -> T {
    use std::time::Duration;
    gompresso::service::run_with_retry(addr, Some(Duration::from_secs(60)), 10, job)
        .unwrap_or_else(|e| client_exit(context, e))
}

/// The `client` subcommand: the same compress/decompress/verify verbs,
/// executed by a `gompressod` daemon over its wire protocol. Exit codes
/// match the local verbs: 0 ok, 1 corrupt input, 2 usage/transport.
fn cmd_client(addr: &str, args: &[String]) {
    match args.first().map(String::as_str) {
        Some("compress") if args.len() >= 3 => {
            let (input, output) = (&args[1], &args[2]);
            let mode = match args.get(3).map(String::as_str).filter(|m| *m != "--de").unwrap_or("bit") {
                "bit" => 0,
                "byte" => 1,
                "auto" => 2,
                other => {
                    eprintln!("unknown mode {other:?}: expected bit, byte or auto");
                    exit(2)
                }
            };
            let de = args.iter().any(|a| a == "--de");
            let params = gompresso::service::CompressParams { mode, de, block_size: 0 };
            let summary = client_call(addr, input, |client| {
                let reader = fs::File::open(input).unwrap_or_else(|e| {
                    eprintln!("cannot read {input}: {e}");
                    exit(2)
                });
                let writer = fs::File::create(output).unwrap_or_else(|e| {
                    eprintln!("cannot write {output}: {e}");
                    exit(2)
                });
                client.compress(params, std::io::BufReader::new(reader), std::io::BufWriter::new(writer))
            });
            println!(
                "{input}: {} -> {} bytes via {addr} (ratio {:.2}:1, {} blocks)",
                summary.uncompressed,
                summary.compressed,
                summary.uncompressed as f64 / summary.compressed.max(1) as f64,
                summary.blocks
            );
        }
        Some("decompress") if args.len() >= 3 => {
            let (input, output) = (&args[1], &args[2]);
            let summary = client_call(addr, input, |client| {
                let reader = fs::File::open(input).unwrap_or_else(|e| {
                    eprintln!("cannot read {input}: {e}");
                    exit(2)
                });
                let writer = fs::File::create(output).unwrap_or_else(|e| {
                    eprintln!("cannot write {output}: {e}");
                    exit(2)
                });
                client.decompress(std::io::BufReader::new(reader), std::io::BufWriter::new(writer))
            });
            println!(
                "{input}: {} bytes restored via {addr} ({} blocks)",
                summary.uncompressed, summary.blocks
            );
        }
        Some("verify") if args.len() >= 2 => {
            let input = &args[1];
            let summary = client_call(addr, input, |client| {
                let reader = fs::File::open(input).unwrap_or_else(|e| {
                    eprintln!("cannot read {input}: {e}");
                    exit(2)
                });
                client.verify(std::io::BufReader::new(reader))
            });
            println!("{input}: OK ({} bytes, all checksums verified via {addr})", summary.uncompressed);
        }
        Some("stats") => {
            let stats = client_call(addr, addr, |client| client.stats());
            print!("{}", stats.render());
        }
        Some("shutdown") => {
            client_call(addr, addr, |client| client.shutdown());
            println!("{addr}: draining");
        }
        _ => usage(),
    }
}

fn demo() {
    println!("no arguments given — running the self-contained demo\n");
    let dir = std::env::temp_dir().join("gompresso_file_tool_demo");
    fs::create_dir_all(&dir).expect("cannot create temp dir");
    let input = dir.join("demo.xml");
    let archive = dir.join("demo.gpso");
    let restored = dir.join("demo.out");
    let data: Vec<u8> = b"<entry><k>alpha</k><v>1</v></entry>\n".repeat(20_000);
    fs::write(&input, &data).expect("cannot write demo input");

    cmd_compress(input.to_str().unwrap(), archive.to_str().unwrap(), "bit", true);
    cmd_info(archive.to_str().unwrap());
    cmd_decompress(archive.to_str().unwrap(), restored.to_str().unwrap(), "planned");
    assert_eq!(fs::read(&restored).unwrap(), data);
    let slice = dir.join("demo.slice");
    cmd_cat(archive.to_str().unwrap(), slice.to_str().unwrap(), Some("36..108"));
    assert_eq!(fs::read(&slice).unwrap(), &data[36..108]);
    println!("\ndemo round trip (and a random-access slice) verified under {}", dir.display());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        None => demo(),
        Some("compress") if args.len() >= 4 => {
            let mode = args.get(4).map(String::as_str).filter(|m| *m != "--de").unwrap_or("bit");
            let de = args.iter().any(|a| a == "--de");
            cmd_compress(&args[2], &args[3], mode, de);
        }
        Some("decompress") if args.len() >= 4 => {
            let strategy = args.get(4).map(String::as_str).unwrap_or("planned");
            cmd_decompress(&args[2], &args[3], strategy);
        }
        Some("cat") if args.len() >= 4 => {
            let range = args
                .iter()
                .position(|a| a == "--range")
                .map(|i| args.get(i + 1).map(String::as_str).unwrap_or_else(|| usage()));
            cmd_cat(&args[2], &args[3], range);
        }
        Some("info") if args.len() >= 3 => cmd_info(&args[2]),
        Some("index") if args.len() >= 3 => cmd_index(&args[2]),
        Some("verify") if args.len() >= 3 => cmd_verify(&args[2]),
        Some("salvage") if args.len() >= 4 => cmd_salvage(&args[2], &args[3]),
        Some("client") if args.len() >= 4 => cmd_client(&args[2], &args[3..]),
        _ => usage(),
    }
}
