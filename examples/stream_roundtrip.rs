//! Streaming compression with bounded memory: compress and decompress a
//! file several times larger than the pipeline's memory budget, then verify
//! the roundtrip byte-for-byte.
//!
//! ```text
//! cargo run --release --example stream_roundtrip [size_mb] [budget_mb]
//! ```
//!
//! Defaults: a 16 MiB synthetic input through a 2 MiB budget (8× larger
//! than the window of blocks the pipeline keeps in flight).

use gompresso::{CompressorConfig, DecompressorConfig, StreamCompressor, StreamDecompressor};
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() {
    let mut args = std::env::args().skip(1);
    let size_mb: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let budget_mb: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let size = size_mb << 20;
    let budget = budget_mb << 20;

    // A moderately compressible synthetic corpus, written to disk so the
    // pipeline really streams from a file instead of a resident buffer.
    let dir = std::env::temp_dir().join(format!("gompresso-stream-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("cannot create temp dir");
    let input_path = dir.join("input.bin");
    let packed_path = dir.join("input.gpso");
    let output_path = dir.join("restored.bin");
    {
        let mut data = Vec::with_capacity(size + 128);
        let mut i = 0u64;
        while data.len() < size {
            data.extend_from_slice(
                format!("record {i}: the quick brown fox jumps over the lazy dog #{}\n", i % 1000).as_bytes(),
            );
            i += 1;
        }
        data.truncate(size);
        std::fs::write(&input_path, &data).expect("cannot write input file");
    }

    println!("input: {size_mb} MiB on disk, streaming budget: {budget_mb} MiB");

    let compressor =
        StreamCompressor::new(CompressorConfig::bit_de()).expect("valid config").with_mem_budget(budget);
    let reader = BufReader::new(File::open(&input_path).expect("open input"));
    let writer = BufWriter::new(File::create(&packed_path).expect("create output"));
    let cstats = compressor.compress_seekable(reader, writer).expect("streaming compression failed");
    println!(
        "compressed: {} -> {} bytes (ratio {:.2}:1) in {:.2}s — {} blocks, {} in flight, {} workers",
        cstats.uncompressed_size,
        cstats.compressed_size,
        cstats.ratio(),
        cstats.wall_seconds,
        cstats.blocks,
        cstats.blocks_in_flight,
        cstats.workers,
    );

    let decompressor = StreamDecompressor::new(DecompressorConfig::default()).with_mem_budget(budget);
    let reader = BufReader::new(File::open(&packed_path).expect("open packed file"));
    let writer = BufWriter::new(File::create(&output_path).expect("create restored file"));
    let dstats = decompressor.decompress(reader, writer).expect("streaming decompression failed");
    println!(
        "decompressed: {} bytes in {:.2}s ({:.3} GB/s)",
        dstats.uncompressed_size,
        dstats.wall_seconds,
        dstats.uncompressed_size as f64 / dstats.wall_seconds / 1e9,
    );

    let original = std::fs::read(&input_path).expect("read input back");
    let restored = std::fs::read(&output_path).expect("read restored file");
    assert_eq!(original, restored, "roundtrip must be byte-identical");
    println!("roundtrip verified: output is byte-identical to the input");

    let _ = std::fs::remove_dir_all(&dir);
}
