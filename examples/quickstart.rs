//! Quickstart: compress a document with Gompresso/Bit + Dependency
//! Elimination, decompress it with the massively-parallel decompressor, and
//! print the compression ratio plus the estimated Tesla K40 decompression
//! bandwidth.
//!
//! Run with: `cargo run --release --example quickstart`

use gompresso::datasets::{DatasetGenerator, WikipediaGenerator};
use gompresso::{compress, decompress, CompressorConfig};

fn main() {
    // 8 MiB of synthetic Wikipedia-style XML (the paper's first dataset).
    let data = WikipediaGenerator::new(7).generate(8 * 1024 * 1024);

    // Gompresso/Bit with Dependency Elimination: the configuration the paper
    // uses for its headline GPU-vs-CPU comparison.
    let config = CompressorConfig::bit_de();
    let compressed = compress(&data, &config).expect("compression failed");
    println!(
        "compressed {} bytes -> {} bytes (ratio {:.2}:1) across {} blocks in {:.1} ms",
        compressed.stats.uncompressed_size,
        compressed.stats.compressed_size,
        compressed.stats.ratio(),
        compressed.stats.blocks,
        compressed.stats.wall_seconds * 1e3,
    );

    let (restored, report) = decompress(&compressed.file).expect("decompression failed");
    assert_eq!(restored, data, "round trip must be lossless");

    println!(
        "decompressed on the host in {:.1} ms ({:.2} GB/s across {} rayon threads)",
        report.wall_seconds * 1e3,
        report.host_bandwidth() / 1e9,
        rayon::current_num_threads(),
    );
    println!(
        "simulated Tesla K40: decode kernel {:.2} ms + LZ77 kernel {:.2} ms + PCIe {:.2} ms",
        report.gpu.decode_kernel_s * 1e3,
        report.gpu.lz77_kernel_s * 1e3,
        (report.gpu.input_transfer_s + report.gpu.output_transfer_s) * 1e3,
    );
    println!(
        "estimated GPU decompression speed: {:.1} GB/s (device only), {:.1} GB/s (with PCIe in/out)",
        report.gpu_bandwidth_no_pcie() / 1e9,
        report.gpu_bandwidth_in_out() / 1e9,
    );
}
