//! Offline subset of the `rand` 0.8 API (see `shims/README.md`).
//!
//! `StdRng` is xoshiro256** seeded through SplitMix64: fast, passes the
//! usual statistical batteries, and — most importantly here — produces the
//! same stream on every platform and run for a given seed, which keeps the
//! synthetic datasets reproducible. The streams differ from upstream
//! `rand`'s ChaCha12-based `StdRng` for the same seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Samples one value.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, span)` via Lemire's multiply-shift reduction.
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty, $mant_bits:expr);*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Exactly as many uniform mantissa bits as the type holds, so
                // `unit` is representable and strictly below 1.0 — the
                // half-open contract survives the cast.
                let unit = (rng.next_u64() >> (64 - $mant_bits)) as $t / (1u64 << $mant_bits) as $t;
                let v = self.start + unit * (self.end - self.start);
                // The lerp can round up to `end`; keep the range half-open.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

impl_float_sample_range!(f32, 24; f64, 53);

pub mod rngs {
    //! Standard generators.
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10i32..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(3usize..=11);
            assert!((3..=11).contains(&v));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let f = rng.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn float_ranges_never_return_the_end_bound() {
        // A degenerate-width range makes any end-bound leak immediate.
        let mut rng = StdRng::seed_from_u64(11);
        let (lo, hi) = (1.0f32, 1.0f32 + f32::EPSILON);
        for _ in 0..1000 {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "f32 sample {v} escaped [{lo}, {hi})");
        }
        let (lo, hi) = (1.0f64, 1.0f64 + f64::EPSILON);
        for _ in 0..1000 {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "f64 sample {v} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn fill_covers_all_bytes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf);
        // With 37 random bytes the chance all are zero is negligible.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }
}
