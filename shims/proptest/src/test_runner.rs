//! Test-runner configuration and the deterministic RNG behind it.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Random source handed to strategies.
///
/// Seeded from the fully-qualified test name (FNV-1a), so every test sees a
/// stable stream across runs and platforms, while distinct tests see
/// distinct streams. Set `PROPTEST_SHIM_SEED` to mix an extra seed in and
/// explore different streams.
#[derive(Debug, Clone)]
pub struct TestRng {
    /// The underlying generator (crate-internal access for strategies).
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Creates the deterministic RNG for the named test.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SHIM_SEED") {
            for byte in extra.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        }
        TestRng { rng: StdRng::seed_from_u64(hash) }
    }
}
