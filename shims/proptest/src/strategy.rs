//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply produces one value per call.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-typed strategies (built by `prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Creates a union over at least one option.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let idx = rng.rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}
