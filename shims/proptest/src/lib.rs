//! Offline subset of the `proptest` API (see `shims/README.md`).
//!
//! Supports the `proptest!` test macro, `prop_assert*`, `prop_assume!`,
//! `prop_oneof!`, `Just`, `any::<T>()`, integer/float range strategies,
//! tuple strategies, `collection::vec` and `prop_map`. Cases are generated
//! from a deterministic per-test seed (derived from the test name) so runs
//! are reproducible; failing inputs are **not shrunk** — the raw case is
//! reported by the failing assertion instead.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` — uniform values over a type's whole domain.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng.gen_range(0u8..2) == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// The "any value of `T`" strategy.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy generating a `Vec` whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Declares property tests.
///
/// Each `fn name(binding in strategy, ...) { body }` item expands to a
/// `#[test]` function that generates `cases` inputs (default 64, or the
/// count given by `#![proptest_config(ProptestConfig::with_cases(n))]`)
/// and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (@run $cases:expr;) => {};
    (@run $cases:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases: u32 = $cases;
            let mut runner_rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut runner_rng);)+
                $body
            }
        }
        $crate::proptest!(@run $cases; $($rest)*);
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config).cases; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::ProptestConfig::default().cases; $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current generated case when the assumption does not hold.
///
/// (Upstream proptest rejects and regenerates; the shim simply moves to the
/// next case, which keeps the run bounded.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Picks uniformly between the listed strategies (all of one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..=9), flag in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            let _ = flag;
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn fixed_len_vec(v in crate::collection::vec(0u64..100, 32usize)) {
            prop_assert_eq!(v.len(), 32);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn prop_map_and_oneof(x in prop_oneof![Just(1usize), Just(4), Just(9)].prop_map(|v| v * 2)) {
            prop_assert!([2usize, 8, 18].contains(&x));
        }

        #[test]
        fn assume_skips_cases(n in 0u8..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_generation_per_name() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(any::<u64>(), 10usize);
        let mut rng1 = crate::test_runner::TestRng::deterministic("some::test");
        let mut rng2 = crate::test_runner::TestRng::deterministic("some::test");
        assert_eq!(strat.generate(&mut rng1), strat.generate(&mut rng2));
    }
}
