//! Offline subset of the `rayon` API (see `shims/README.md`).
//!
//! Provides `slice.par_iter()` / `vec.par_iter()` with `map`, `enumerate`
//! and `collect`, executed on real OS threads via `std::thread::scope`.
//! Items are split into contiguous chunks, one per available core, and the
//! results are concatenated in input order, so `collect()` is
//! order-preserving exactly like upstream rayon's indexed collect.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global worker-count override installed by [`ThreadPoolBuilder`]; 0 means
/// "use the number of available cores".
static NUM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads the shim will use: the global-pool override if
/// one was installed, otherwise the number of available cores (upstream
/// rayon defaults to the same).
pub fn current_num_threads() -> usize {
    match NUM_THREADS_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Error type returned by [`ThreadPoolBuilder::build_global`] (mirrors the
/// upstream signature; the shim's build never actually fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Subset of upstream rayon's `ThreadPoolBuilder`: configures the number of
/// worker threads the global helpers use.
///
/// Upstream errors when the global pool is initialized twice; the shim has
/// no long-lived pool (workers are scoped per `collect`), so repeated
/// `build_global` calls simply replace the override.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 = number of available cores).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Installs this configuration for the global helpers.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        NUM_THREADS_OVERRIDE.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

pub mod iter {
    //! Parallel iterator subset.

    /// Extension trait providing `par_iter()` on slices and vectors.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type yielded by reference.
        type Item: 'data;
        /// Returns a parallel iterator over `&Self::Item`.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Pairs each item with its index.
        pub fn enumerate(self) -> ParEnumerate<'data, T> {
            ParEnumerate { items: self.items }
        }

        /// Maps each item through `f` (lazily; run by `collect`).
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            ParMap { items: self.items, f }
        }
    }

    /// Enumerated parallel iterator.
    pub struct ParEnumerate<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParEnumerate<'data, T> {
        /// Maps each `(index, &item)` pair through `f`.
        pub fn map<R, F>(self, f: F) -> ParEnumerateMap<'data, T, F>
        where
            F: Fn((usize, &'data T)) -> R + Sync,
            R: Send,
        {
            ParEnumerateMap { items: self.items, f }
        }
    }

    /// Mapped parallel iterator.
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T, R, F> ParMap<'data, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        /// Runs the map on a thread pool and collects results in input order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let f = self.f;
            collect_indexed(self.items, |_, item| f(item))
        }
    }

    /// Mapped, enumerated parallel iterator.
    pub struct ParEnumerateMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T, R, F> ParEnumerateMap<'data, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn((usize, &'data T)) -> R + Sync,
    {
        /// Runs the map on a thread pool and collects results in input order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let f = self.f;
            collect_indexed(self.items, |i, item| f((i, item)))
        }
    }

    /// Extension trait providing `into_par_iter()` on vectors.
    ///
    /// Items are moved into the iterator, so the map closure receives them
    /// by value — this is what lets callers hand each worker exclusive
    /// resources such as disjoint `&mut [u8]` output slices obtained from
    /// `split_at_mut`.
    pub trait IntoParallelIterator {
        /// Element type yielded by value.
        type Item: Send;
        /// Returns a by-value parallel iterator.
        fn into_par_iter(self) -> IntoParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self }
        }
    }

    /// Owning parallel iterator over a vector.
    pub struct IntoParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> IntoParIter<T> {
        /// Maps each item by value through `f` (lazily; run by `collect`).
        pub fn map<R, F>(self, f: F) -> IntoParMap<T, F>
        where
            F: Fn(T) -> R + Sync,
            R: Send,
        {
            IntoParMap { items: self.items, f }
        }
    }

    /// Mapped owning parallel iterator.
    pub struct IntoParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T, R, F> IntoParMap<T, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        /// Runs the map on a thread pool and collects results in input order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let f = self.f;
            let mut items = self.items;
            let threads = crate::current_num_threads().min(items.len());
            if threads <= 1 {
                return items.into_iter().map(f).collect();
            }
            // Split into per-thread chunks by value, preserving order.
            let chunk_len = items.len().div_ceil(threads);
            let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
            {
                let mut it = items.drain(..);
                loop {
                    let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
                    if chunk.is_empty() {
                        break;
                    }
                    chunks.push(chunk);
                }
            }
            let mut per_chunk: Vec<Vec<R>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| {
                        let f = &f;
                        scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>())
                    })
                    .collect();
                per_chunk = handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(results) => results,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect();
            });
            per_chunk.into_iter().flatten().collect()
        }
    }

    fn collect_indexed<'data, T, R, F, C>(items: &'data [T], f: F) -> C
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &'data T) -> R + Sync,
        C: FromIterator<R>,
    {
        let threads = crate::current_num_threads().min(items.len());
        if threads <= 1 {
            return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let chunk_len = items.len().div_ceil(threads);
        let mut per_chunk: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk_len)
                .enumerate()
                .map(|(chunk_idx, chunk)| {
                    let f = &f;
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .enumerate()
                            .map(|(j, item)| f(chunk_idx * chunk_len + j, item))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            per_chunk = handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(results) => results,
                    // Propagate the original panic payload, as upstream
                    // rayon does, instead of masking it with a new message.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect();
        });
        per_chunk.into_iter().flatten().collect()
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_map_collect_indices_match() {
        let input = vec![7u32; 1000];
        let out: Vec<usize> = input.par_iter().enumerate().map(|(i, _)| i).collect();
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_collects_empty() {
        let input: Vec<u8> = Vec::new();
        let out: Vec<u8> = input.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn into_par_iter_moves_items_and_preserves_order() {
        let input: Vec<String> = (0..5000).map(|i| i.to_string()).collect();
        let out: Vec<usize> = input.into_par_iter().map(|s| s.parse::<usize>().unwrap()).collect();
        assert_eq!(out, (0..5000).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_supports_disjoint_mutable_slices() {
        let mut buffer = vec![0u8; 1024];
        let mut work: Vec<(u8, &mut [u8])> = Vec::new();
        let mut rest: &mut [u8] = &mut buffer;
        for i in 0..8u8 {
            let (chunk, tail) = rest.split_at_mut(128);
            rest = tail;
            work.push((i, chunk));
        }
        let written: Vec<usize> = work
            .into_par_iter()
            .map(|(i, chunk)| {
                chunk.fill(i + 1);
                chunk.len()
            })
            .collect();
        assert_eq!(written, vec![128; 8]);
        for (i, chunk) in buffer.chunks(128).enumerate() {
            assert!(chunk.iter().all(|&b| b == i as u8 + 1));
        }
    }

    #[test]
    fn into_par_iter_empty_is_empty() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn thread_pool_builder_overrides_worker_count() {
        crate::ThreadPoolBuilder::new().num_threads(3).build_global().unwrap();
        assert_eq!(crate::current_num_threads(), 3);
        // Parallel collect still works (and preserves order) under the
        // override.
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, (1..=1000).collect::<Vec<_>>());
        // Restore the default so other tests see the core count.
        crate::ThreadPoolBuilder::new().num_threads(0).build_global().unwrap();
    }
}
