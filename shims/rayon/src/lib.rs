//! Offline subset of the `rayon` API (see `shims/README.md`).
//!
//! Provides `slice.par_iter()` / `vec.par_iter()` with `map`, `enumerate`
//! and `collect`, executed on real OS threads via `std::thread::scope`.
//! Items are split into contiguous chunks, one per available core, and the
//! results are concatenated in input order, so `collect()` is
//! order-preserving exactly like upstream rayon's indexed collect.

#![forbid(unsafe_code)]

/// Number of worker threads the shim will use (the number of available
/// cores; upstream rayon defaults to the same).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

pub mod iter {
    //! Parallel iterator subset.

    /// Extension trait providing `par_iter()` on slices and vectors.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type yielded by reference.
        type Item: 'data;
        /// Returns a parallel iterator over `&Self::Item`.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Pairs each item with its index.
        pub fn enumerate(self) -> ParEnumerate<'data, T> {
            ParEnumerate { items: self.items }
        }

        /// Maps each item through `f` (lazily; run by `collect`).
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            ParMap { items: self.items, f }
        }
    }

    /// Enumerated parallel iterator.
    pub struct ParEnumerate<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParEnumerate<'data, T> {
        /// Maps each `(index, &item)` pair through `f`.
        pub fn map<R, F>(self, f: F) -> ParEnumerateMap<'data, T, F>
        where
            F: Fn((usize, &'data T)) -> R + Sync,
            R: Send,
        {
            ParEnumerateMap { items: self.items, f }
        }
    }

    /// Mapped parallel iterator.
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T, R, F> ParMap<'data, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        /// Runs the map on a thread pool and collects results in input order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let f = self.f;
            collect_indexed(self.items, |_, item| f(item))
        }
    }

    /// Mapped, enumerated parallel iterator.
    pub struct ParEnumerateMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T, R, F> ParEnumerateMap<'data, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn((usize, &'data T)) -> R + Sync,
    {
        /// Runs the map on a thread pool and collects results in input order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let f = self.f;
            collect_indexed(self.items, |i, item| f((i, item)))
        }
    }

    /// Extension trait providing `into_par_iter()` on vectors.
    ///
    /// Items are moved into the iterator, so the map closure receives them
    /// by value — this is what lets callers hand each worker exclusive
    /// resources such as disjoint `&mut [u8]` output slices obtained from
    /// `split_at_mut`.
    pub trait IntoParallelIterator {
        /// Element type yielded by value.
        type Item: Send;
        /// Returns a by-value parallel iterator.
        fn into_par_iter(self) -> IntoParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self }
        }
    }

    /// Owning parallel iterator over a vector.
    pub struct IntoParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> IntoParIter<T> {
        /// Maps each item by value through `f` (lazily; run by `collect`).
        pub fn map<R, F>(self, f: F) -> IntoParMap<T, F>
        where
            F: Fn(T) -> R + Sync,
            R: Send,
        {
            IntoParMap { items: self.items, f }
        }
    }

    /// Mapped owning parallel iterator.
    pub struct IntoParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T, R, F> IntoParMap<T, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        /// Runs the map on a thread pool and collects results in input order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let f = self.f;
            let mut items = self.items;
            let threads = crate::current_num_threads().min(items.len());
            if threads <= 1 {
                return items.into_iter().map(f).collect();
            }
            // Split into per-thread chunks by value, preserving order.
            let chunk_len = items.len().div_ceil(threads);
            let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
            {
                let mut it = items.drain(..);
                loop {
                    let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
                    if chunk.is_empty() {
                        break;
                    }
                    chunks.push(chunk);
                }
            }
            let mut per_chunk: Vec<Vec<R>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| {
                        let f = &f;
                        scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>())
                    })
                    .collect();
                per_chunk = handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(results) => results,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect();
            });
            per_chunk.into_iter().flatten().collect()
        }
    }

    fn collect_indexed<'data, T, R, F, C>(items: &'data [T], f: F) -> C
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &'data T) -> R + Sync,
        C: FromIterator<R>,
    {
        let threads = crate::current_num_threads().min(items.len());
        if threads <= 1 {
            return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let chunk_len = items.len().div_ceil(threads);
        let mut per_chunk: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk_len)
                .enumerate()
                .map(|(chunk_idx, chunk)| {
                    let f = &f;
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .enumerate()
                            .map(|(j, item)| f(chunk_idx * chunk_len + j, item))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            per_chunk = handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(results) => results,
                    // Propagate the original panic payload, as upstream
                    // rayon does, instead of masking it with a new message.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect();
        });
        per_chunk.into_iter().flatten().collect()
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_map_collect_indices_match() {
        let input = vec![7u32; 1000];
        let out: Vec<usize> = input.par_iter().enumerate().map(|(i, _)| i).collect();
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_collects_empty() {
        let input: Vec<u8> = Vec::new();
        let out: Vec<u8> = input.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn into_par_iter_moves_items_and_preserves_order() {
        let input: Vec<String> = (0..5000).map(|i| i.to_string()).collect();
        let out: Vec<usize> = input.into_par_iter().map(|s| s.parse::<usize>().unwrap()).collect();
        assert_eq!(out, (0..5000).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_supports_disjoint_mutable_slices() {
        let mut buffer = vec![0u8; 1024];
        let mut work: Vec<(u8, &mut [u8])> = Vec::new();
        let mut rest: &mut [u8] = &mut buffer;
        for i in 0..8u8 {
            let (chunk, tail) = rest.split_at_mut(128);
            rest = tail;
            work.push((i, chunk));
        }
        let written: Vec<usize> = work
            .into_par_iter()
            .map(|(i, chunk)| {
                chunk.fill(i + 1);
                chunk.len()
            })
            .collect();
        assert_eq!(written, vec![128; 8]);
        for (i, chunk) in buffer.chunks(128).enumerate() {
            assert!(chunk.iter().all(|&b| b == i as u8 + 1));
        }
    }

    #[test]
    fn into_par_iter_empty_is_empty() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
