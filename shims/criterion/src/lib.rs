//! Offline subset of the `criterion` API (see `shims/README.md`).
//!
//! Benchmarks compile and run with the same source as upstream criterion and
//! report mean wall-clock time per iteration plus throughput, but keep no
//! statistics history and draw no plots. Environment knobs:
//!
//! * `CRITERION_SHIM_SAMPLES` — override every group's sample size.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque black box preventing the optimiser from deleting a benchmark body.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input size in bytes per iteration.
    Bytes(u64),
    /// Number of elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let default_sample_size =
            std::env::var("CRITERION_SHIM_SAMPLES").ok().and_then(|v| v.parse().ok()).unwrap_or(10);
        Criterion { default_sample_size }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _criterion: self, sample_size, throughput: None }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Honour the env override even when the source pins a size.
        if std::env::var("CRITERION_SHIM_SAMPLES").is_err() {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Finishes the group (prints a trailing newline, like upstream's report).
    pub fn finish(self) {
        println!();
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let mean = bencher.mean_iter_time();
        let mut line = format!("  {:<40} time: {:>12}", id.id, fmt_duration(mean));
        if let Some(tp) = self.throughput {
            let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
            match tp {
                Throughput::Bytes(bytes) => {
                    line.push_str(&format!(
                        "   thrpt: {:>10.3} MiB/s ({:.4} GB/s)",
                        per_sec(bytes) / (1 << 20) as f64,
                        per_sec(bytes) / 1e9
                    ));
                }
                Throughput::Elements(n) => {
                    line.push_str(&format!("   thrpt: {:>10.0} elem/s", per_sec(n)));
                }
            }
        }
        println!("{line}");
    }
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { sample_size, samples: Vec::new() }
    }

    /// Runs `f` once for warm-up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn mean_iter_time(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { default_sample_size: 3 };
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0u32;
        group.bench_function("count_runs", |b| {
            b.iter(|| {
                runs += 1;
                runs
            });
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
